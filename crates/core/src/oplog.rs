//! # Answer-operation log — incremental classification deltas
//!
//! The round-driven engines ([`crate::vertical`], [`crate::baselines`],
//! [`crate::multi`]) re-derive classification state inside their control
//! loops: pick a question, block on the answer (and, multi-user, on the
//! aggregator), mark, propagate, scan for the next frontier. This module
//! turns every *accepted* crowd interaction into a first-class, replayable
//! operation — an [`AnswerOp`] — appended to the run's [`OpLog`], so the
//! same mining outcome can be reproduced by **applying answer deltas in
//! log order** with no question selection, no crowd, and no round
//! structure at all.
//!
//! ## What is recorded
//!
//! One op per *counted* interaction side-effect, stamped with the value of
//! the engine's question counter at the time (`tick`, 1-based — the same
//! number a [`DiscoveryEvent`] carries) and an intra-tick sequence number
//! (`seq`) assigned by [`OpLog::record`]:
//!
//! * [`OpVerdict::Support`] — a support answer for one node: a concrete
//!   answer, a specialization choice, or (multi-user) the implicit
//!   0-support fan-out of a pruning click and the per-option 0-supports of
//!   "none of these". In aggregated logs the op feeds the black-box
//!   [`Aggregator`] exactly as [`crate::multi`]'s `record_answer` does; in
//!   single-user logs it marks directly against the threshold.
//! * [`OpVerdict::NoneOfThese`] — the single-user grouped "none of these":
//!   all options marked insignificant as *one* interaction with at most
//!   one discovery event, mirroring `Session::ask_specialization`.
//! * [`OpVerdict::Prune`] — a single-user "irrelevant" click: the element
//!   is pruned from the classifier and the valid tracker.
//! * [`OpVerdict::NoAnswer`] — a counted question whose effects were
//!   entirely member-local (multi-user pruning of a *personal*
//!   classifier): no shared-state delta, but the tick must exist so replay
//!   reproduces the question count.
//! * [`OpVerdict::Msp`] — a derived discovery: the engine confirmed the
//!   node as an MSP at this tick. Discovery *timing* is control-flow
//!   dependent (the vertical climb notices late, the baselines' monitor
//!   notices per answer), so it is carried in the log and re-emitted at
//!   its recorded position; replay asserts the re-derived state still
//!   entails it (debug builds).
//! * [`OpVerdict::Revise`] — a *compensating* op: a late or contradictory
//!   re-answer for a node the member already answered (simtest's
//!   contradiction faults). The engines keep the first accepted answer,
//!   so a revision is state-neutral by definition — replay counts it
//!   (`oplog.compensated`) and drops it, which also makes re-delivery
//!   idempotent.
//!
//! ## Merge order
//!
//! The canonical order is **`(tick, member, seq)`**. Ticks are unique per
//! question and every op of a tick belongs to the member who answered it,
//! so within one coordinator's log the order reduces to `(tick, seq)` —
//! exactly the recording order. Replay always sorts first, so applying
//! **any permutation** of the ops converges to the same outcome: this is
//! the differential oracle checked by `crates/simtest`'s permutation
//! harness and `tests/oplog_equivalence.rs`, and the property that lets
//! logs from future sharded coordinators (ROADMAP item 3) merge
//! deterministically by `member` within a tick.
//!
//! ## Delta-cone invariants
//!
//! Replay applies each op to a fresh [`Classifier`]/`ValidTracker` pair
//! over the *post-run* DAG (never materializing new nodes — `&Dag`, not
//! `&mut`). Each mark touches only the ≤-cone of the changed assignment
//! (posting lists + eager propagation, PR 6's CSR/arena layout); the
//! visited-cone size is reported per op through the `oplog.cone_size`
//! histogram, with `oplog.applied`/`oplog.compensated` counters and an
//! `oplog.apply` span per op.

use std::collections::HashMap;

use crate::aggregate::{AggVerdict, Aggregator};
use crate::assignment::Assignment;
use crate::classify::{Class, Classifier};
use crate::dag::{Dag, NodeId};
use crate::vertical::{DiscoveryEvent, DiscoveryKind, ValidTracker};
use crowd::MemberId;
use ontology::ElemId;

/// What one accepted crowd interaction did to the shared mining state.
#[derive(Debug, Clone, PartialEq)]
pub enum OpVerdict {
    /// A support answer for the op's node (concrete answer, specialization
    /// choice, or multi-user 0-support fan-out).
    Support {
        /// Reported support in `[0, 1]`.
        support: f64,
    },
    /// Single-user grouped "none of these": every option is marked
    /// insignificant as one interaction (at most one discovery event).
    NoneOfThese {
        /// The specialization options declined, in presentation order.
        options: Vec<NodeId>,
    },
    /// A single-user "irrelevant" pruning click on an ontology element.
    Prune {
        /// The pruned element.
        elem: ElemId,
    },
    /// A counted question with no shared-state delta (multi-user pruning
    /// affects only the member's personal classifier).
    NoAnswer,
    /// Derived discovery: the op's node was confirmed as an MSP.
    Msp {
        /// Whether the MSP is valid w.r.t. the query.
        valid: bool,
    },
    /// A compensating re-answer (late/contradictory delivery). The engines
    /// keep the first accepted answer, so this is state-neutral: replay
    /// counts it and drops it, idempotently under re-delivery.
    Revise {
        /// The revised support (recorded for provenance; never applied).
        support: f64,
    },
}

/// A position in one coordinator's op log: the `(tick, seq)` stamp of
/// the last op a consumer has durably applied. The cluster's merge
/// protocol acks batches by watermark, and a restarted node re-requests
/// its peer's position to resume sending from exactly the right op —
/// nothing is lost, and re-delivery below the watermark is idempotent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct Watermark {
    /// Tick of the last applied op (0 = nothing applied).
    pub tick: u32,
    /// Intra-tick sequence of the last applied op.
    pub seq: u32,
}

impl Watermark {
    /// The watermark of an op (the position *after* applying it).
    pub fn of(op: &AnswerOp) -> Watermark {
        Watermark {
            tick: op.tick,
            seq: op.seq,
        }
    }
}

/// One entry of the answer-operation log.
#[derive(Debug, Clone, PartialEq)]
pub struct AnswerOp {
    /// Engine question-counter value when the op was recorded (1-based;
    /// the same number the run's [`DiscoveryEvent`]s carry).
    pub tick: u32,
    /// Intra-tick application index, assigned by [`OpLog::record`].
    pub seq: u32,
    /// The crowd member whose interaction produced the op.
    pub member: MemberId,
    /// The DAG node the op applies to ([`NodeId::SENTINEL`] for ops that
    /// carry no node, i.e. [`OpVerdict::Prune`] and [`OpVerdict::NoAnswer`]).
    pub node: NodeId,
    /// The recorded effect.
    pub verdict: OpVerdict,
}

/// A streaming consumer of freshly recorded ops — the serving layer's
/// durability hook. The multi-user engine calls [`OpTap::append`] at
/// round boundaries (and once more at run end) with the ops recorded
/// since the previous call and the DAG that resolves their [`NodeId`]s,
/// so a write-ahead log can persist the run *as it progresses*: a crash
/// loses at most the current round, never a flushed one.
pub trait OpTap {
    /// Consumes `ops` (a contiguous, in-order slice of the run's log) in
    /// the context of `dag`. Called on the engine thread; implementations
    /// should hand off quickly (e.g. buffered WAL appends).
    fn append(&self, dag: &Dag<'_>, ops: &[AnswerOp]);
}

/// A cloneable, debuggable handle around a shared [`OpTap`] — the form
/// [`crate::vertical::MiningConfig`] carries (the config is `Clone` +
/// `Debug`; trait objects are neither).
#[derive(Clone)]
pub struct OpTapHandle(std::sync::Arc<dyn OpTap + Send + Sync>);

impl OpTapHandle {
    /// Wraps a tap implementation.
    pub fn new(tap: impl OpTap + Send + Sync + 'static) -> OpTapHandle {
        OpTapHandle(std::sync::Arc::new(tap))
    }

    /// Forwards to the wrapped tap.
    pub fn append(&self, dag: &Dag<'_>, ops: &[AnswerOp]) {
        self.0.append(dag, ops);
    }
}

impl std::fmt::Debug for OpTapHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("OpTapHandle(..)")
    }
}

/// The per-run monotone operation log: every accepted answer as an
/// [`AnswerOp`], plus the footer facts replay cannot derive from the ops
/// themselves (threshold, aggregation mode, completion).
#[derive(Debug, Clone)]
pub struct OpLog {
    ops: Vec<AnswerOp>,
    /// Significance threshold Θ the run used.
    threshold: f64,
    /// `true` when `Support` ops must be routed through the black-box
    /// aggregator (multi-user log); `false` for single-user logs, where a
    /// support answer marks directly against the threshold.
    aggregated: bool,
    /// Whether the recording run classified everything. Completion depends
    /// on crowd availability and question budgets — environmental facts
    /// the ops do not encode — so it is carried, not derived.
    complete: bool,
    /// Recording cursor: the tick of the most recently recorded op.
    last_tick: u32,
    /// Recording cursor: next `seq` within `last_tick`.
    next_seq: u32,
}

impl OpLog {
    /// An empty log for a run with significance threshold `threshold`;
    /// `aggregated` selects how replay applies `Support` ops.
    pub fn new(threshold: f64, aggregated: bool) -> OpLog {
        OpLog {
            ops: Vec::new(),
            threshold,
            aggregated,
            complete: false,
            last_tick: 0,
            next_seq: 0,
        }
    }

    /// Appends an op at `tick` (the engine's question counter), assigning
    /// the next intra-tick sequence number.
    pub fn record(&mut self, tick: usize, member: MemberId, node: NodeId, verdict: OpVerdict) {
        let tick = tick as u32;
        if tick != self.last_tick {
            self.last_tick = tick;
            self.next_seq = 0;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.ops.push(AnswerOp {
            tick,
            seq,
            member,
            node,
            verdict,
        });
    }

    /// Records one [`OpVerdict::Msp`] op per newly confirmed MSP (the
    /// tail of an engine's `msp_ids` after an `MspMonitor` sweep).
    pub(crate) fn record_msps(
        &mut self,
        tick: usize,
        member: MemberId,
        dag: &Dag<'_>,
        new: &[NodeId],
    ) {
        for &id in new {
            self.record(
                tick,
                member,
                id,
                OpVerdict::Msp {
                    valid: dag.node(id).valid,
                },
            );
        }
    }

    /// Sets the footer completion flag (known only when the run ends).
    pub fn set_complete(&mut self, complete: bool) {
        self.complete = complete;
    }

    /// The recorded ops, in recording (= canonical) order.
    pub fn ops(&self) -> &[AnswerOp] {
        &self.ops
    }

    /// The `(tick, seq)` watermark of the last recorded op (the position
    /// an up-to-date consumer has acked), or the default zero watermark
    /// for an empty log.
    pub fn watermark(&self) -> Watermark {
        self.ops.last().map(Watermark::of).unwrap_or_default()
    }

    /// The suffix of the log strictly after `from` — what a peer that
    /// acked `from` still needs. Within one log the recording order is
    /// the canonical `(tick, seq)` order, so the suffix is contiguous.
    pub fn ops_after(&self, from: Watermark) -> &[AnswerOp] {
        let start = self
            .ops
            .partition_point(|o| (o.tick, o.seq) <= (from.tick, from.seq));
        &self.ops[start..] // PANIC-OK: start is a watermark previously returned by this log hence <= ops.len()
    }

    /// Number of recorded ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the log holds no ops.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The run's significance threshold Θ.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Whether `Support` ops are aggregated (multi-user log).
    pub fn aggregated(&self) -> bool {
        self.aggregated
    }

    /// Whether the recording run classified everything.
    pub fn complete(&self) -> bool {
        self.complete
    }

    /// The same footer with a replacement op sequence — the permutation
    /// harness's entry point for shuffles and fault injections.
    pub fn with_ops(&self, ops: Vec<AnswerOp>) -> OpLog {
        OpLog {
            ops,
            ..self.clone()
        }
    }

    /// Sorts ops into the canonical `(tick, member, seq)` merge order.
    ///
    /// Ticks are unique per question and all ops of a tick carry the
    /// answering member, so within one log this is exactly the recording
    /// order; `member` is the tie-breaker that makes logs from different
    /// coordinators merge deterministically.
    pub fn canonical_sort(ops: &mut [AnswerOp]) {
        ops.sort_by_key(|o| (o.tick, o.member.0, o.seq));
    }

    /// Replays the log against the post-run `dag`, applying each op as an
    /// incremental classification delta to a fresh classifier/tracker.
    ///
    /// Ops are canonically sorted first, so any permutation of the log
    /// converges to the same outcome. `aggregator` must be the black box
    /// the recording run used (ignored for single-user logs). The DAG is
    /// taken by shared reference: replay never materializes nodes, so
    /// `nodes_materialized` is derived, not re-grown.
    pub fn replay<A: Aggregator>(
        &self,
        dag: &Dag<'_>,
        aggregator: &A,
        pool: &minipool::Pool,
        tele: &telemetry::Telemetry,
    ) -> ReplayOutcome {
        self.replay_impl(dag, aggregator, pool, tele, false)
    }

    /// The cluster coordinator's merge entry point: replays a log merged
    /// from several nodes' streams, where the single-log invariants the
    /// strict replay asserts can fail legitimately:
    ///
    /// * the same MSP is discovered independently by every shard, so
    ///   `Msp` ops arrive duplicated — the first in canonical order wins;
    /// * under faults a node's `Msp` op can outlive the evidence that
    ///   justified it (a peer's stream was cut by a partition or a
    ///   permanent crash), so each `Msp` op is *entailment-checked*
    ///   against the merged state and silently discarded (counted in
    ///   [`ReplayOutcome::discarded_msps`]) when the evidence is missing.
    ///
    /// Everything else — canonical `(tick, member, seq)` sort, aggregator
    /// routing, delta application — is identical to [`OpLog::replay`],
    /// which is what makes the merge commutative: ticks are per-node
    /// question counters, members belong to exactly one node, and `seq`
    /// orders within a tick, so the sort is a total order over any union
    /// of per-node streams.
    pub fn replay_merged<A: Aggregator>(
        &self,
        dag: &Dag<'_>,
        aggregator: &A,
        pool: &minipool::Pool,
        tele: &telemetry::Telemetry,
    ) -> ReplayOutcome {
        self.replay_impl(dag, aggregator, pool, tele, true)
    }

    fn replay_impl<A: Aggregator>(
        &self,
        dag: &Dag<'_>,
        aggregator: &A,
        pool: &minipool::Pool,
        tele: &telemetry::Telemetry,
        merged: bool,
    ) -> ReplayOutcome {
        let span = tele.span("oplog.replay");
        let tele = span.tele().clone();
        let mut ops = self.ops.clone();
        Self::canonical_sort(&mut ops);

        let mut cls = Classifier::new();
        let mut tracker = ValidTracker::new(dag)
            .with_pool(*pool)
            .with_telemetry(tele.clone());
        let mut events: Vec<DiscoveryEvent> = Vec::new();
        let mut msp_ids: Vec<NodeId> = Vec::new();
        // Aggregator inbox per node, exactly as `multi::record_answer`
        // accumulates it (lookup only — never iterated, so the hash map
        // cannot leak ordering into the outcome).
        let mut entries: HashMap<NodeId, Vec<(MemberId, f64)>> = HashMap::new();
        let mut applied: u64 = 0;
        let mut compensated: u64 = 0;
        let mut discarded_msps: u64 = 0;
        let mut questions: usize = 0;

        for op in &ops {
            let _apply = tele.span("oplog.apply");
            if !matches!(op.verdict, OpVerdict::Revise { .. }) {
                questions = questions.max(op.tick as usize);
            }
            match &op.verdict {
                OpVerdict::Support { support } => {
                    applied += 1;
                    tele.count("oplog.applied", 1);
                    let (decided, sig) = if self.aggregated {
                        // Mirror multi::record_answer: push, consult the
                        // black box, and only mark while still Unknown.
                        let entry = entries.entry(op.node).or_default();
                        entry.push((op.member, *support));
                        let verdict = aggregator.verdict(entry, self.threshold);
                        if verdict == AggVerdict::Undecided
                            || cls.class(dag, op.node) != Class::Unknown
                        {
                            (false, false)
                        } else {
                            (true, verdict == AggVerdict::Significant)
                        }
                    } else {
                        // Single-user engines mark every accepted support
                        // answer directly against the threshold.
                        (true, *support >= self.threshold)
                    };
                    if decided {
                        let cone = if sig {
                            cls.mark_significant(dag, op.node)
                        } else {
                            cls.mark_insignificant(dag, op.node)
                        };
                        tele.observe("oplog.cone_size", cone as u64);
                        if tracker.witness(dag, op.node, sig) {
                            events.push(DiscoveryEvent {
                                question: op.tick as usize,
                                kind: DiscoveryKind::ValidClassified {
                                    total: tracker.total_classified,
                                },
                            });
                        }
                    }
                }
                OpVerdict::NoneOfThese { options } => {
                    applied += 1;
                    tele.count("oplog.applied", 1);
                    let mut changed = false;
                    for &o in options {
                        let cone = cls.mark_insignificant(dag, o);
                        tele.observe("oplog.cone_size", cone as u64);
                        changed |= tracker.witness(dag, o, false);
                    }
                    if changed {
                        events.push(DiscoveryEvent {
                            question: op.tick as usize,
                            kind: DiscoveryKind::ValidClassified {
                                total: tracker.total_classified,
                            },
                        });
                    }
                }
                OpVerdict::Prune { elem } => {
                    applied += 1;
                    tele.count("oplog.applied", 1);
                    cls.prune_elem(dag, *elem);
                    if tracker.prune(dag, *elem) {
                        events.push(DiscoveryEvent {
                            question: op.tick as usize,
                            kind: DiscoveryKind::ValidClassified {
                                total: tracker.total_classified,
                            },
                        });
                    }
                }
                OpVerdict::NoAnswer => {
                    applied += 1;
                    tele.count("oplog.applied", 1);
                }
                OpVerdict::Msp { valid } => {
                    if merged {
                        // Merged streams: a shard's MSP claim survives
                        // only if the merged state entails it — evidence
                        // present (not Unknown), no significant child,
                        // validity matching the replica — and it is not a
                        // duplicate of a peer shard's earlier claim.
                        let view = dag.view();
                        let entailed = cls.class_frozen(&view, op.node) != Class::Unknown
                            && dag.children_if_generated(op.node).is_none_or(|children| {
                                children
                                    .iter()
                                    .all(|&c| cls.class_frozen(&view, c) != Class::Significant)
                            })
                            && *valid == dag.node(op.node).valid;
                        if !entailed || msp_ids.contains(&op.node) {
                            discarded_msps += 1;
                            tele.count("oplog.msp_discarded", 1);
                            continue;
                        }
                    } else {
                        // Carried discovery; the re-derived state must
                        // still entail it: answered below (not Unknown),
                        // no child significant, and the recorded validity
                        // must match.
                        #[cfg(debug_assertions)]
                        {
                            let view = dag.view();
                            debug_assert_ne!(
                                cls.class_frozen(&view, op.node),
                                Class::Unknown,
                                "MSP op for a node whose cone has no answers"
                            );
                            if let Some(children) = dag.children_if_generated(op.node) {
                                for &c in children {
                                    debug_assert_ne!(
                                        cls.class_frozen(&view, c),
                                        Class::Significant,
                                        "MSP op for a node with a significant child"
                                    );
                                }
                            }
                            debug_assert_eq!(*valid, dag.node(op.node).valid);
                        }
                    }
                    msp_ids.push(op.node);
                    events.push(DiscoveryEvent {
                        question: op.tick as usize,
                        kind: DiscoveryKind::Msp { valid: *valid },
                    });
                }
                OpVerdict::Revise { .. } => {
                    // First accepted answer wins (the engines never replace
                    // one); the revision compensates to a counted no-op.
                    compensated += 1;
                    tele.count("oplog.compensated", 1);
                }
            }
        }

        // Frozen sweeps over the final knowledge, mirroring the engines'
        // end-of-run derivations (never stamping, never materializing).
        let view = dag.view();
        let ids: Vec<NodeId> = dag.node_ids().collect();
        let unknown = pool.par_map(&ids, |&id| cls.class_frozen(&view, id) == Class::Unknown);
        let undecided = unknown.into_iter().filter(|&u| u).count();
        let msps: Vec<Assignment> = msp_ids
            .iter()
            .map(|&id| dag.node(id).assignment.clone())
            .collect();
        let valid_msps: Vec<Assignment> = msp_ids
            .iter()
            .filter(|&&id| dag.node(id).valid)
            .map(|&id| dag.node(id).assignment.clone())
            .collect();

        ReplayOutcome {
            msps,
            valid_msps,
            msp_ids,
            questions,
            events,
            total_valid: tracker.len(),
            undecided,
            nodes_materialized: dag.len(),
            complete: self.complete,
            applied,
            compensated,
            discarded_msps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::FixedSampleAggregator;
    use crate::multi::run_multi;
    use crate::synth::{plant_msps, synthetic_domain, MspDistribution, PlantedOracle};
    use crate::vertical::{run_vertical, MiningConfig, MiningOutcome};
    use crowd::{AnswerModel, MemberBehavior, PersonalDb, SimulatedCrowd, SimulatedMember};
    use oassis_ql::{bind, evaluate_where, parse, MatchMode};
    use ontology::domains::figure1;
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;

    fn assert_replay_matches(replay: &ReplayOutcome, out: &MiningOutcome) {
        assert_eq!(replay.questions, out.questions);
        assert_eq!(replay.events, out.events);
        assert_eq!(replay.msps, out.msps);
        assert_eq!(replay.valid_msps, out.valid_msps);
        assert_eq!(replay.total_valid, out.total_valid);
        assert_eq!(replay.nodes_materialized, out.nodes_materialized);
        assert_eq!(replay.complete, out.complete);
    }

    #[test]
    fn vertical_log_replays_bit_identically() {
        let d = synthetic_domain(80, 5, 0);
        let q = parse(&d.query).unwrap();
        let b = bind(&q, &d.ontology).unwrap();
        let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
        let mut full = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        full.materialize_all();
        let planted = plant_msps(&mut full, 6, true, MspDistribution::Uniform, 7);
        let patterns: Vec<_> = planted
            .iter()
            .map(|&id| full.node(id).assignment.apply(&b))
            .collect();
        let cfg = MiningConfig {
            specialization_ratio: 0.4,
            ..MiningConfig::default()
        };
        let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        let mut oracle = PlantedOracle::new(d.ontology.vocab(), patterns, 1, 0);
        oracle.pruning_prob = 0.3;
        let out = run_vertical(&mut dag, &mut oracle, MemberId(0), &cfg);
        assert!(!out.ops.is_empty());
        let agg = FixedSampleAggregator { sample_size: 1 };
        let pool = minipool::Pool::sequential();
        let replay = out
            .ops
            .replay(&dag, &agg, &pool, &telemetry::Telemetry::off());
        assert_replay_matches(&replay, &out);
        assert_eq!(replay.compensated, 0);
    }

    #[test]
    fn multi_log_replays_any_permutation() {
        let ont = figure1::ontology();
        let q = parse(figure1::SIMPLE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let [d1, d2] = figure1::personal_dbs(&ont);
        let mut tx = d1;
        for _ in 0..3 {
            tx.extend(d2.iter().cloned());
        }
        let members = (0..2)
            .map(|i| {
                SimulatedMember::new(
                    PersonalDb::from_transactions(tx.clone()),
                    MemberBehavior::default(),
                    AnswerModel::Exact,
                    i,
                )
            })
            .collect();
        let mut crowd = SimulatedCrowd::new(ont.vocab(), members);
        let agg = FixedSampleAggregator { sample_size: 2 };
        let out = run_multi(&mut dag, &mut crowd, &agg, &MiningConfig::default());
        let pool = minipool::Pool::sequential();
        let tele = telemetry::Telemetry::off();
        let ops = &out.mining.ops;
        let replay = ops.replay(&dag, &agg, &pool, &tele);
        assert_replay_matches(&replay, &out.mining);
        assert_eq!(replay.undecided, out.undecided);
        // any shuffle of the ops must converge to the same outcome
        for seed in 0..4u64 {
            let mut shuffled = ops.ops().to_vec();
            shuffled.shuffle(&mut StdRng::seed_from_u64(seed));
            let permuted = ops.with_ops(shuffled).replay(&dag, &agg, &pool, &tele);
            assert_replay_matches(&permuted, &out.mining);
            assert_eq!(permuted.undecided, out.undecided);
        }
    }

    #[test]
    fn watermarks_slice_the_log_into_contiguous_suffixes() {
        let mut log = OpLog::new(0.5, true);
        log.record(
            1,
            MemberId(0),
            NodeId(0),
            OpVerdict::Support { support: 1.0 },
        );
        log.record(
            1,
            MemberId(0),
            NodeId(1),
            OpVerdict::Support { support: 0.0 },
        );
        log.record(2, MemberId(1), NodeId(2), OpVerdict::NoAnswer);
        // zero watermark = the whole log
        assert_eq!(log.ops_after(Watermark::default()), log.ops());
        // mid-tick watermark = the suffix strictly after (1, 0)
        let wm = Watermark { tick: 1, seq: 0 };
        assert_eq!(log.ops_after(wm).len(), 2);
        assert_eq!(log.ops_after(wm)[0].node, NodeId(1));
        // the log's own watermark = nothing left to send
        assert_eq!(log.watermark(), Watermark { tick: 2, seq: 0 });
        assert!(log.ops_after(log.watermark()).is_empty());
        assert_eq!(OpLog::new(0.5, true).watermark(), Watermark::default());
    }

    #[test]
    fn merged_replay_dedupes_and_entails_msp_ops() {
        // Two "shards" over the same world: duplicate the whole log with
        // shifted member ids, as two nodes that independently mined the
        // same planted truth would produce.
        let d = synthetic_domain(80, 5, 1);
        let q = parse(&d.query).unwrap();
        let b = bind(&q, &d.ontology).unwrap();
        let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
        let mut full = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        full.materialize_all();
        let planted = plant_msps(&mut full, 5, true, MspDistribution::Uniform, 3);
        let patterns: Vec<_> = planted
            .iter()
            .map(|&id| full.node(id).assignment.apply(&b))
            .collect();
        let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        let mut oracle = PlantedOracle::new(d.ontology.vocab(), patterns, 1, 5);
        let agg = FixedSampleAggregator { sample_size: 1 };
        let out = run_multi(&mut dag, &mut oracle, &agg, &MiningConfig::default());
        let pool = minipool::Pool::sequential();
        let tele = telemetry::Telemetry::off();
        let ops = &out.mining.ops;
        let single = ops.replay(&dag, &agg, &pool, &tele);

        let mut doubled = ops.ops().to_vec();
        doubled.extend(ops.ops().iter().map(|o| AnswerOp {
            member: MemberId(o.member.0 + 1),
            ..o.clone()
        }));
        let merged = ops
            .with_ops(doubled)
            .replay_merged(&dag, &agg, &pool, &tele);
        // every duplicated MSP claim collapses to one discovery
        assert_eq!(merged.msps, single.msps);
        assert_eq!(merged.valid_msps, single.valid_msps);
        assert_eq!(merged.total_valid, single.total_valid);
        assert_eq!(merged.discarded_msps, single.msps.len() as u64);

        // an MSP claim whose evidence never arrived is discarded, not
        // trusted: keep only the Msp ops and drop all answers
        let orphans: Vec<AnswerOp> = ops
            .ops()
            .iter()
            .filter(|o| matches!(o.verdict, OpVerdict::Msp { .. }))
            .cloned()
            .collect();
        let n_orphans = orphans.len() as u64;
        assert!(n_orphans > 0);
        let starved = ops
            .with_ops(orphans)
            .replay_merged(&dag, &agg, &pool, &tele);
        assert!(starved.msps.is_empty());
        assert_eq!(starved.discarded_msps, n_orphans);
    }

    #[test]
    fn revise_ops_are_idempotent_compensations() {
        let ont = figure1::ontology();
        let q = parse(figure1::SIMPLE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let [d1, _] = figure1::personal_dbs(&ont);
        let members = vec![SimulatedMember::new(
            PersonalDb::from_transactions(d1),
            MemberBehavior::default(),
            AnswerModel::Exact,
            0,
        )];
        let mut crowd = SimulatedCrowd::new(ont.vocab(), members);
        let agg = FixedSampleAggregator { sample_size: 1 };
        let out = run_multi(&mut dag, &mut crowd, &agg, &MiningConfig::default());
        let pool = minipool::Pool::sequential();
        let tele = telemetry::Telemetry::off();
        let ops = &out.mining.ops;
        let baseline = ops.replay(&dag, &agg, &pool, &tele);
        // a contradictory re-answer arrives late — and is delivered twice
        let first = ops.ops().first().expect("run recorded ops").clone();
        let mut with_revision = ops.ops().to_vec();
        for _ in 0..2 {
            with_revision.push(AnswerOp {
                tick: first.tick,
                seq: with_revision.len() as u32 + 100,
                member: first.member,
                node: first.node,
                verdict: OpVerdict::Revise { support: 0.0 },
            });
        }
        let revised = ops.with_ops(with_revision).replay(&dag, &agg, &pool, &tele);
        assert_eq!(revised.compensated, 2);
        assert_eq!(revised.applied, baseline.applied);
        assert_eq!(revised.questions, baseline.questions);
        assert_eq!(revised.events, baseline.events);
        assert_eq!(revised.msps, baseline.msps);
        assert_eq!(revised.undecided, baseline.undecided);
        assert_eq!(revised.total_valid, baseline.total_valid);
    }
}

/// The outcome of replaying an [`OpLog`]: the digest-bearing fields of a
/// mining run, re-derived from answer deltas alone.
#[derive(Debug, Clone)]
pub struct ReplayOutcome {
    /// All MSPs, in discovery order (from the carried [`OpVerdict::Msp`]
    /// ops).
    pub msps: Vec<Assignment>,
    /// The valid MSPs — the query answer.
    pub valid_msps: Vec<Assignment>,
    /// The MSP node ids, in discovery order.
    // audit: allow(D8, derived 1:1 from msps which the digest already folds)
    pub msp_ids: Vec<NodeId>,
    /// Questions the recording run counted (distinct non-revise ticks).
    pub questions: usize,
    /// Discovery events, bit-identical to the recording run's.
    pub events: Vec<DiscoveryEvent>,
    /// Valid base assignments classified by the end of the run.
    pub total_valid: usize,
    /// Materialized nodes still unclassified under the final knowledge.
    pub undecided: usize,
    /// Nodes the recording run materialized (replay never grows the DAG).
    pub nodes_materialized: usize,
    /// Carried from the log footer (environmental, not derivable).
    pub complete: bool,
    /// Ops applied (everything but revisions).
    // audit: allow(D8, replay-cost instrumentation; not part of the semantic outcome replicas compare)
    pub applied: u64,
    /// Compensating revisions dropped under first-answer-wins.
    // audit: allow(D8, replay-cost instrumentation; not part of the semantic outcome replicas compare)
    pub compensated: u64,
    /// Merged-mode only: `Msp` ops discarded as duplicates (every shard
    /// discovers the same MSP) or as unentailed by the merged evidence
    /// (their justifying stream was cut by a fault). Always 0 for
    /// [`OpLog::replay`].
    // audit: allow(D8, merge bookkeeping that varies with shard count by design; the folded msps/events prove equivalence)
    pub discarded_msps: u64,
}
