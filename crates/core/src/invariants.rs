//! Step-level invariant checkers for the deterministic simulation
//! harness (`crates/simtest`).
//!
//! When [`MiningConfig::debug_checks`](crate::MiningConfig::debug_checks)
//! is on, the engines re-verify these after every answered question and
//! panic with a descriptive message on the first violation — the harness
//! catches the panic, records the fault schedule that produced it, and
//! shrinks the schedule to a minimal reproducer. The checks are pure
//! frozen reads (no sticky-cache stamping), so enabling them never
//! changes an outcome, only the running time.

use crate::classify::{Class, Classifier};
use crate::dag::{Dag, NodeId};

/// Observation 4.4 as an edge invariant over the materialized DAG: a
/// child (specialization) classified significant forces its parent
/// (generalization) significant, and an insignificant parent forces every
/// generated child insignificant.
///
/// Only sound for pruning-free classifiers: a user-guided pruning click
/// interacts with the sticky first-query semantics (a node stamped
/// significant *before* the click keeps its verdict while an unstamped
/// generalization flips), so classifiers with recorded clicks are skipped.
/// The multi-user engine's global classifier never records clicks — click
/// answers reach it as aggregated zero-support votes.
pub fn check_classification_monotonicity(dag: &Dag<'_>, cls: &Classifier) -> Result<(), String> {
    if cls.pruned_clicks() > 0 {
        return Ok(());
    }
    let view = dag.view();
    for id in dag.node_ids() {
        let Some(children) = view.children_if_generated(id) else {
            continue;
        };
        let pc = cls.class_frozen(&view, id);
        for &c in children {
            let cc = cls.class_frozen(&view, c);
            if cc == Class::Significant && pc != Class::Significant {
                return Err(format!(
                    "classification monotonicity violated: child {c:?} is Significant \
                     but its parent {id:?} is {pc:?}"
                ));
            }
            if pc == Class::Insignificant && cc != Class::Insignificant {
                return Err(format!(
                    "classification monotonicity violated: parent {id:?} is Insignificant \
                     but its child {c:?} is {cc:?}"
                ));
            }
        }
    }
    Ok(())
}

/// Every confirmed MSP must be significant with all generated children
/// insignificant (maximality), and no two MSPs may be order-comparable
/// (the MSP set is an antichain).
pub fn check_msp_maximality(
    dag: &Dag<'_>,
    cls: &Classifier,
    msp_ids: &[NodeId],
) -> Result<(), String> {
    let view = dag.view();
    for &m in msp_ids {
        if cls.class_frozen(&view, m) != Class::Significant {
            return Err(format!(
                "MSP invariant violated: confirmed MSP {m:?} is {:?}",
                cls.class_frozen(&view, m)
            ));
        }
        let Some(children) = view.children_if_generated(m) else {
            return Err(format!(
                "MSP invariant violated: {m:?} confirmed before its children were generated"
            ));
        };
        for &c in children {
            if cls.class_frozen(&view, c) != Class::Insignificant {
                return Err(format!(
                    "MSP maximality violated: MSP {m:?} has child {c:?} classified {:?}",
                    cls.class_frozen(&view, c)
                ));
            }
        }
    }
    for (i, &a) in msp_ids.iter().enumerate() {
        // PANIC-OK: slicing from i+1 where i < len is always in range
        for &b in &msp_ids[i + 1..] {
            if view.leq(a, b) || view.leq(b, a) {
                return Err(format!(
                    "MSP antichain violated: MSPs {a:?} and {b:?} are order-comparable"
                ));
            }
        }
    }
    Ok(())
}
