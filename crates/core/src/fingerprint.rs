//! Per-slot bitset closure fingerprints for interned assignments.
//!
//! The semantic order of Definition 4.1 compares assignments slot by
//! slot: `a ≤ b` iff every value of `a`'s slot is ≤ some value of `b`'s
//! slot (plus the MORE-fact condition). Writing `Anc(v) = {x : x ≤ v}`
//! for the ancestor closure (up-set) of a value, the slot condition is
//! equivalent to a bitset subset test:
//!
//! ```text
//! F_s(a) = ⋃_{v ∈ a_s} Anc(v)      (the slot fingerprint)
//! a_s ≤ b_s   ⟺   F_s(a) ⊆ F_s(b)
//! ```
//!
//! (⇐: each v ∈ a_s has v ∈ F_s(a) ⊆ F_s(b), so v ≤ some w ∈ b_s.
//! ⇒: v ≤ w implies Anc(v) ⊆ Anc(w) by transitivity.)
//!
//! A node's fingerprint concatenates the slot fingerprints into one
//! word-aligned bit vector — elements and relations get disjoint,
//! word-aligned regions inside each slot, so `F(a)` is built by ORing
//! the vocabulary's precomputed ancestor-closure rows without any bit
//! shifting. The whole order check (minus MORE facts, which stay an
//! exact loop — they are rare and unbounded) becomes a handful of
//! word-parallel subset tests, with a single-word OR-fold summary as a
//! prefilter.

use crate::assignment::{Assignment, Slot};
use oassis_ql::Value;
use ontology::{ElemId, RelId, Vocabulary};

/// Bit layout of node fingerprints for one DAG (fixed vocabulary and
/// slot count).
#[derive(Debug, Clone)]
pub struct FingerprintSpace {
    num_slots: usize,
    elem_words: usize,
    words_per_slot: usize,
}

impl FingerprintSpace {
    /// Lays out `num_slots` slot regions over the vocabulary.
    pub fn new(vocab: &Vocabulary, num_slots: usize) -> Self {
        FingerprintSpace {
            num_slots,
            elem_words: vocab.elem_words(),
            words_per_slot: vocab.elem_words() + vocab.rel_words(),
        }
    }

    /// Number of slots laid out.
    #[inline]
    pub fn num_slots(&self) -> usize {
        self.num_slots
    }

    /// Words per slot region (elements first, then relations).
    #[inline]
    pub fn words_per_slot(&self) -> usize {
        self.words_per_slot
    }

    /// Words of the element sub-region of each slot.
    #[inline]
    pub fn elem_words(&self) -> usize {
        self.elem_words
    }

    /// Total words per node fingerprint.
    #[inline]
    pub fn words_per_node(&self) -> usize {
        self.num_slots * self.words_per_slot
    }

    /// Global bit of element `e` in slot `s`.
    #[inline]
    pub fn elem_bit(&self, s: usize, e: ElemId) -> usize {
        s * self.words_per_slot * 64 + e.index()
    }

    /// Global bit of relation `r` in slot `s`.
    #[inline]
    pub fn rel_bit(&self, s: usize, r: RelId) -> usize {
        (s * self.words_per_slot + self.elem_words) * 64 + r.index()
    }

    /// Global bit of a value in slot `s`.
    #[inline]
    pub fn value_bit(&self, s: usize, v: Value) -> usize {
        match v {
            Value::Elem(e) => self.elem_bit(s, e),
            Value::Rel(r) => self.rel_bit(s, r),
        }
    }

    /// Writes the fingerprint of `a` into `out` (length
    /// [`words_per_node`](Self::words_per_node), zeroed by the caller).
    pub fn write(&self, vocab: &Vocabulary, a: &Assignment, out: &mut [u64]) {
        debug_assert_eq!(a.num_slots(), self.num_slots);
        debug_assert_eq!(out.len(), self.words_per_node());
        for si in 0..a.num_slots() {
            let base = si * self.words_per_slot;
            for &v in a.slot(Slot(si as u16)) {
                match v {
                    Value::Elem(e) => or_into(
                        &mut out[base..base + self.elem_words], // PANIC-OK: base arithmetic is bounded by the layout sizes fixed at construction
                        vocab.elem_ancestor_words(e),
                    ),
                    Value::Rel(r) => or_into(
                        &mut out[base + self.elem_words..base + self.words_per_slot], // PANIC-OK: base arithmetic is bounded by the layout sizes fixed at construction
                        vocab.rel_ancestor_words(r),
                    ),
                }
            }
        }
    }
}

fn or_into(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d |= s;
    }
}

/// Word-parallel subset test: every bit of `a` is set in `b`.
#[inline]
pub fn subset(a: &[u64], b: &[u64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).all(|(&x, &y)| x & !y == 0)
}

/// OR-fold of all words — a one-word summary. `summarize(a) & !summarize(b)
/// != 0` proves `a ⊄ b` (a bit position set somewhere in `a` but nowhere
/// in `b` at that word offset modulo 64 cannot be covered), so it is a
/// sound not-subset prefilter.
#[inline]
pub fn summarize(words: &[u64]) -> u64 {
    words.iter().fold(0, |acc, &w| acc | w)
}

/// Iterates the global indices of all set bits, in increasing order.
pub fn iter_bits(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(wi, &word)| {
        let mut word = word;
        std::iter::from_fn(move || {
            if word == 0 {
                None
            } else {
                let bit = word.trailing_zeros() as usize;
                word &= word - 1;
                Some(wi * 64 + bit)
            }
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_ql::{bind, parse};
    use ontology::domains::figure1;

    fn assign(ont: &ontology::Ontology, x: &str, ys: &[&str]) -> Assignment {
        let v = ont.vocab();
        Assignment::new(
            v,
            vec![
                vec![Value::Elem(v.elem_id(x).unwrap())],
                ys.iter()
                    .map(|y| Value::Elem(v.elem_id(y).unwrap()))
                    .collect(),
            ],
            vec![],
        )
    }

    fn fp(space: &FingerprintSpace, vocab: &Vocabulary, a: &Assignment) -> Vec<u64> {
        let mut out = vec![0u64; space.words_per_node()];
        space.write(vocab, a, &mut out);
        out
    }

    #[test]
    fn subset_matches_assignment_leq() {
        let ont = figure1::ontology();
        let q = parse(figure1::SIMPLE_QUERY).unwrap();
        let _b = bind(&q, &ont).unwrap();
        let v = ont.vocab();
        let space = FingerprintSpace::new(v, 2);
        let samples = [
            assign(&ont, "Central Park", &["Ball Game"]),
            assign(&ont, "Central Park", &["Baseball"]),
            assign(&ont, "Central Park", &["Biking"]),
            assign(&ont, "Central Park", &["Sport"]),
            assign(&ont, "Central Park", &["Biking", "Ball Game"]),
            assign(&ont, "Park", &["Sport"]),
            assign(&ont, "Bronx Zoo", &["Feed a Monkey"]),
            Assignment::new(
                v,
                vec![
                    vec![Value::Elem(v.elem_id("Central Park").unwrap())],
                    vec![],
                ],
                vec![],
            ),
        ];
        for a in &samples {
            for b in &samples {
                let fa = fp(&space, v, a);
                let fb = fp(&space, v, b);
                assert_eq!(
                    subset(&fa, &fb),
                    a.leq(v, b),
                    "fingerprint disagrees on {a:?} ≤ {b:?}"
                );
                // the summary prefilter is sound
                if summarize(&fa) & !summarize(&fb) != 0 {
                    assert!(!a.leq(v, b));
                }
            }
        }
    }

    #[test]
    fn value_bits_are_disjoint_per_slot_and_kind() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let space = FingerprintSpace::new(v, 2);
        let e = v.elem_id("Biking").unwrap();
        let r = v.rel_id("doAt").unwrap();
        let mut seen = std::collections::HashSet::new();
        for s in 0..2 {
            assert!(seen.insert(space.elem_bit(s, e)));
            assert!(seen.insert(space.rel_bit(s, r)));
        }
        // a value's own bit is always part of its fingerprint (reflexive
        // closure), which the posting indexes rely on
        let a = assign(&ont, "Central Park", &["Biking"]);
        let words = fp(&space, v, &a);
        let bit = space.elem_bit(1, e);
        assert!(words[bit / 64] & (1 << (bit % 64)) != 0);
        let bits: Vec<usize> = iter_bits(&words).collect();
        assert!(bits.contains(&bit));
        assert!(bits.windows(2).all(|w| w[0] < w[1]));
    }
}
