//! The high-level OASSIS engine: parse → bind → evaluate WHERE → build the
//! assignment DAG → mine the crowd → format answers.
//!
//! This is the API the examples and experiments drive; it corresponds to
//! the prototype's top-level flow of Section 6.1 (RDFLIB SPARQL engine →
//! AssignGenerator → QueueManager → CrowdCache).
//!
//! # The single entry point
//!
//! [`Oassis::run`] executes any request — a pattern query, a rule query
//! (`IMPLYING … AND CONFIDENCE`), or a batch of concurrent queries —
//! described by a [`QueryRequest`] with [`ExecuteOptions`], against a
//! [`CrowdBinding`], and returns a [`QueryOutcome`]. Errors unify under
//! [`OassisError`]. The historical entry points `execute`,
//! `execute_concurrent` and `execute_rules` are gone — audit rule D6
//! bans both their definitions and any call site, so the single entry
//! point cannot regrow wrappers silently. Requests are built fluently:
//! `QueryRequest::pattern(src).threshold(0.4).batch_width(2)`.

use crate::aggregate::Aggregator;
use crate::cache::{SharedCachingCrowd, SharedCrowdCache};
use crate::dag::Dag;
use crate::diversify::diversify;
use crate::multi::{run_multi, MultiOutcome};
use crate::rulemine::{run_rules, RuleMiningConfig, RuleOutcome};
use crate::templates::QuestionTemplates;
use crate::vertical::MiningConfig;
use crowd::CrowdSource;
use oassis_ql::{bind, evaluate_where_pool, parse, BoundQuery, MatchMode, OutputFormat, QlError};
use ontology::Ontology;
use std::path::PathBuf;

/// Unified error type of the public engine surface.
#[derive(Debug)]
pub enum OassisError {
    /// Query-language error: parse, bind, or semantic validation.
    Ql(QlError),
    /// Crowd-side error: the request and the crowd binding don't fit
    /// (e.g. a batch request with a single shared crowd).
    Crowd(String),
    /// Invalid resource budget (question budget, support threshold).
    Budget(String),
    /// Telemetry error: a trace was requested without a recording sink,
    /// or writing the trace failed.
    Telemetry(String),
}

impl std::fmt::Display for OassisError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OassisError::Ql(e) => write!(f, "query error: {e}"),
            OassisError::Crowd(m) => write!(f, "crowd error: {m}"),
            OassisError::Budget(m) => write!(f, "budget error: {m}"),
            OassisError::Telemetry(m) => write!(f, "telemetry error: {m}"),
        }
    }
}

impl std::error::Error for OassisError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OassisError::Ql(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QlError> for OassisError {
    fn from(e: QlError) -> Self {
        OassisError::Ql(e)
    }
}

/// Options governing one [`QueryRequest`].
#[derive(Debug, Clone, Default)]
pub struct ExecuteOptions {
    /// Mining configuration for pattern queries (threshold override,
    /// question-type policy, pool, crowd-access policy, telemetry handle).
    pub mining: MiningConfig,
    /// Rule-mining configuration, used when the query has an `IMPLYING`
    /// clause.
    pub rules: RuleMiningConfig,
    /// Where to write the JSONL telemetry trace after the run. Requires a
    /// recording sink on `mining.telemetry`; rejected with
    /// [`OassisError::Telemetry`] otherwise.
    pub trace_path: Option<PathBuf>,
}

/// A declarative description of one engine invocation: one query (pattern
/// or rule) or a batch of concurrently executed pattern queries, plus the
/// [`ExecuteOptions`] to run them under.
#[derive(Debug, Clone)]
pub struct QueryRequest<'q> {
    queries: Vec<&'q str>,
    options: ExecuteOptions,
}

impl<'q> QueryRequest<'q> {
    /// A request for a single query (pattern or rule — dispatched on the
    /// presence of an `IMPLYING` clause).
    pub fn new(src: &'q str) -> Self {
        QueryRequest {
            queries: vec![src],
            options: ExecuteOptions::default(),
        }
    }

    /// A request executing `queries` concurrently (one pool slot each)
    /// against per-query crowds sharing one answer cache; requires a
    /// [`CrowdBinding::PerQuery`] binding.
    pub fn batch(queries: &[&'q str]) -> Self {
        QueryRequest {
            queries: queries.to_vec(),
            options: ExecuteOptions::default(),
        }
    }

    /// Builder entry point for a single pattern query; chain the fluent
    /// setters to shape the mining configuration:
    /// `QueryRequest::pattern(src).threshold(0.4).batch_width(2)`.
    ///
    /// Equivalent to [`QueryRequest::new`] — rule queries still dispatch
    /// on their `IMPLYING` clause, so `pattern` is about intent, not a
    /// restriction.
    pub fn pattern(src: &'q str) -> Self {
        QueryRequest::new(src)
    }

    /// Sets the minimum support threshold in `(0, 1]` (overrides the
    /// query's `WITH SUPPORT` clause).
    pub fn threshold(mut self, threshold: f64) -> Self {
        self.options.mining.threshold = Some(threshold);
        self
    }

    /// Sets the question batch width `k ≥ 1`: up to `k` questions are
    /// planned per member interaction.
    pub fn batch_width(mut self, width: usize) -> Self {
        self.options.mining.batch_width = width;
        self
    }

    /// Caps the total number of crowd questions the run may ask.
    pub fn max_questions(mut self, budget: usize) -> Self {
        self.options.mining.max_questions = Some(budget);
        self
    }

    /// Sets the deterministic mining seed (tie-breaking, sampling).
    pub fn seed(mut self, seed: u64) -> Self {
        self.options.mining.seed = seed;
        self
    }

    /// Replaces the full option block.
    pub fn with_options(mut self, options: ExecuteOptions) -> Self {
        self.options = options;
        self
    }

    /// Sets the mining configuration.
    pub fn with_mining(mut self, mining: MiningConfig) -> Self {
        self.options.mining = mining;
        self
    }

    /// Sets the rule-mining configuration.
    pub fn with_rules(mut self, rules: RuleMiningConfig) -> Self {
        self.options.rules = rules;
        self
    }

    /// Requests a JSONL trace dump after the run (requires a recording
    /// sink on the mining telemetry handle).
    pub fn with_trace_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.options.trace_path = Some(path.into());
        self
    }

    /// The query sources in the request.
    pub fn queries(&self) -> &[&'q str] {
        &self.queries
    }

    /// The options the request runs under.
    pub fn options(&self) -> &ExecuteOptions {
        &self.options
    }
}

/// How [`Oassis::run`] reaches the crowd.
pub enum CrowdBinding<'c, C, F = fn(usize) -> C> {
    /// One shared crowd source, asked directly (single queries).
    Single(&'c mut C),
    /// A per-query crowd factory plus a shared answer cache (batch
    /// requests; also accepted for single queries, which use `make(0)`).
    PerQuery {
        /// Builds the `i`-th query's crowd on whichever worker thread
        /// picks it up.
        make: F,
        /// The cache every per-query crowd consults and fills.
        cache: &'c SharedCrowdCache,
    },
}

impl<'c, C: CrowdSource> CrowdBinding<'c, C, fn(usize) -> C> {
    /// Binds one crowd source directly (pins the unused factory type so
    /// plain `run` calls infer).
    pub fn single(crowd: &'c mut C) -> Self {
        CrowdBinding::Single(crowd)
    }
}

impl<'c, C: CrowdSource, F: Fn(usize) -> C> CrowdBinding<'c, C, F> {
    /// Binds a per-query crowd factory and a shared answer cache.
    pub fn per_query(make: F, cache: &'c SharedCrowdCache) -> Self {
        CrowdBinding::PerQuery { make, cache }
    }
}

/// What a [`QueryRequest`] produced.
// One QueryOutcome exists per run and is consumed immediately by an
// `into_*` accessor — the variant size skew never multiplies across a
// collection, and boxing would put an allocation on every answer.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum QueryOutcome {
    /// A pattern query's rendered answers and mining outcome.
    Patterns(QueryAnswer),
    /// A rule query's rendered rules and outcome.
    Rules(RuleAnswer),
    /// Per-query results of a batch request, in query order.
    Batch(Vec<Result<QueryAnswer, OassisError>>),
}

impl QueryOutcome {
    /// The pattern answer, if this was a single pattern query.
    pub fn as_patterns(&self) -> Option<&QueryAnswer> {
        match self {
            QueryOutcome::Patterns(a) => Some(a),
            _ => None,
        }
    }

    /// The rule answer, if this was a rule query.
    pub fn as_rules(&self) -> Option<&RuleAnswer> {
        match self {
            QueryOutcome::Rules(a) => Some(a),
            _ => None,
        }
    }

    /// The per-query results, if this was a batch request.
    pub fn as_batch(&self) -> Option<&[Result<QueryAnswer, OassisError>]> {
        match self {
            QueryOutcome::Batch(v) => Some(v),
            _ => None,
        }
    }

    /// Consumes into the pattern answer, if this was a pattern query.
    pub fn into_patterns(self) -> Option<QueryAnswer> {
        match self {
            QueryOutcome::Patterns(a) => Some(a),
            _ => None,
        }
    }

    /// Consumes into the rule answer, if this was a rule query.
    pub fn into_rules(self) -> Option<RuleAnswer> {
        match self {
            QueryOutcome::Rules(a) => Some(a),
            _ => None,
        }
    }

    /// Consumes into the batch results, if this was a batch request.
    pub fn into_batch(self) -> Option<Vec<Result<QueryAnswer, OassisError>>> {
        match self {
            QueryOutcome::Batch(v) => Some(v),
            _ => None,
        }
    }
}

/// The OASSIS engine over one ontology.
pub struct Oassis<'o> {
    ont: &'o Ontology,
    match_mode: MatchMode,
    templates: QuestionTemplates,
    pool: minipool::Pool,
    policy: Option<crowd::CrowdPolicy>,
}

/// The answer to an OASSIS-QL query.
#[derive(Debug)]
pub struct QueryAnswer {
    /// Rendered answer rows: the valid MSPs (or, with `ALL`, every valid
    /// significant assignment), in the format the `SELECT` clause
    /// requested.
    pub answers: Vec<String>,
    /// Full mining outcome (question counts, discovery events, MSP sets
    /// including invalid ones, …).
    pub outcome: MultiOutcome,
}

impl QueryAnswer {
    /// The run's answer-operation log: every accepted answer as a
    /// replayable delta. `ops.replay(...)` over the run's DAG reproduces
    /// the outcome's digest-relevant fields from any permutation of the
    /// log (see [`crate::oplog`]).
    pub fn ops(&self) -> &crate::oplog::OpLog {
        &self.outcome.mining.ops
    }
}

impl<'o> Oassis<'o> {
    /// Creates an engine with exact (SPARQL-style) WHERE matching.
    pub fn new(ont: &'o Ontology) -> Self {
        Oassis {
            ont,
            match_mode: MatchMode::Exact,
            templates: QuestionTemplates::new(),
            pool: minipool::Pool::sequential(),
            policy: None,
        }
    }

    /// Installs a crowd-access policy (per-question timeout, retry cap,
    /// deterministic backoff) that overrides the one in the request's
    /// [`MiningConfig`] on every [`Self::run`].
    pub fn with_policy(mut self, policy: crowd::CrowdPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Switches the WHERE match mode.
    pub fn with_match_mode(mut self, mode: MatchMode) -> Self {
        self.match_mode = mode;
        self
    }

    /// Installs a fork-join pool. Single queries use it for WHERE
    /// evaluation; batch requests use it to run whole queries on parallel
    /// threads. Answers are bit-identical at any pool width.
    pub fn with_pool(mut self, pool: minipool::Pool) -> Self {
        self.pool = pool;
        self
    }

    /// Installs question templates (used by [`Self::render_question`]).
    pub fn with_templates(mut self, templates: QuestionTemplates) -> Self {
        self.templates = templates;
        self
    }

    /// The underlying ontology.
    pub fn ontology(&self) -> &'o Ontology {
        self.ont
    }

    /// Parses and binds a query without executing it.
    pub fn prepare(&self, src: &str) -> Result<BoundQuery, OassisError> {
        let q = parse(src)?;
        Ok(bind(&q, self.ont)?)
    }

    /// Renders a crowd question in natural language.
    pub fn render_question(&self, q: &crowd::Question) -> String {
        match q {
            crowd::Question::Concrete { pattern } => {
                self.templates.render_concrete(self.ont.vocab(), pattern)
            }
            crowd::Question::Specialization { base, options } => self
                .templates
                .render_specialization(self.ont.vocab(), base, options),
        }
    }

    /// Executes any [`QueryRequest`] — a pattern query, a rule query, or
    /// a batch — against the given [`CrowdBinding`] and aggregator. The
    /// single entry point of the engine.
    ///
    /// Validation performed up front:
    /// * the request must carry at least one query;
    /// * a zero question budget or a support threshold outside `(0, 1]`
    ///   is rejected with [`OassisError::Budget`];
    /// * `trace_path` without a recording telemetry sink is rejected with
    ///   [`OassisError::Telemetry`];
    /// * a batch request with a [`CrowdBinding::Single`] binding is
    ///   rejected with [`OassisError::Crowd`].
    pub fn run<C, A, F>(
        &self,
        req: &QueryRequest<'_>,
        crowd: CrowdBinding<'_, C, F>,
        aggregator: &A,
    ) -> Result<QueryOutcome, OassisError>
    where
        C: CrowdSource,
        A: Aggregator + Sync,
        F: Fn(usize) -> C + Sync,
    {
        if req.queries.is_empty() {
            return Err(OassisError::Ql(QlError::Invalid(
                "request has no queries".into(),
            )));
        }
        let mining = &req.options.mining;
        if mining.max_questions == Some(0) {
            return Err(OassisError::Budget(
                "question budget is zero; the run could never ask anything".into(),
            ));
        }
        if let Some(t) = mining.threshold {
            if !(t > 0.0 && t <= 1.0) {
                return Err(OassisError::Budget(format!(
                    "support threshold {t} outside (0, 1]"
                )));
            }
        }
        if req.options.trace_path.is_some() && mining.telemetry.sink().is_none() {
            return Err(OassisError::Telemetry(
                "trace_path requires a recording telemetry sink on the mining config".into(),
            ));
        }
        let outcome = if req.queries.len() > 1 {
            match crowd {
                CrowdBinding::PerQuery { make, cache } => QueryOutcome::Batch(self.run_batch(
                    &req.queries,
                    &make,
                    aggregator,
                    mining,
                    cache,
                )),
                CrowdBinding::Single(_) => {
                    return Err(OassisError::Crowd(
                        "batch request needs a per-query crowd binding \
                         (CrowdBinding::per_query)"
                            .into(),
                    ))
                }
            }
        } else {
            // PANIC-OK: the is_empty check above guarantees an element.
            let src = req.queries[0];
            let is_rule = !self.prepare(src)?.imp_meta.is_empty();
            match crowd {
                CrowdBinding::Single(c) => {
                    if is_rule {
                        QueryOutcome::Rules(self.run_rule_query(
                            src,
                            c,
                            &req.options.rules,
                            &mining.telemetry,
                        )?)
                    } else {
                        QueryOutcome::Patterns(self.run_pattern_query(src, c, aggregator, mining)?)
                    }
                }
                CrowdBinding::PerQuery { make, cache } => {
                    let mut c = SharedCachingCrowd::new(make(0), cache);
                    if is_rule {
                        QueryOutcome::Rules(self.run_rule_query(
                            src,
                            &mut c,
                            &req.options.rules,
                            &mining.telemetry,
                        )?)
                    } else {
                        QueryOutcome::Patterns(
                            self.run_pattern_query(src, &mut c, aggregator, mining)?,
                        )
                    }
                }
            }
        };
        if let Some(path) = &req.options.trace_path {
            if let Some(sink) = mining.telemetry.sink() {
                sink.write_jsonl(path).map_err(|e| {
                    OassisError::Telemetry(format!(
                        "failed to write trace to {}: {e}",
                        path.display()
                    ))
                })?;
            }
        }
        Ok(outcome)
    }

    /// Pattern-query pipeline: prepare → WHERE → DAG → multi-user mining
    /// → selection/rendering, each phase under its own telemetry span.
    fn run_pattern_query<C: CrowdSource, A: Aggregator>(
        &self,
        src: &str,
        crowd: &mut C,
        aggregator: &A,
        cfg: &MiningConfig,
    ) -> Result<QueryAnswer, OassisError> {
        let root = cfg.telemetry.span("query.pattern");
        let tele = root.tele().clone();
        let bound = {
            let _s = tele.span("prepare");
            self.prepare(src)?
        };
        if !bound.imp_meta.is_empty() {
            return Err(OassisError::Ql(QlError::Invalid(
                "query has an IMPLYING clause; rule queries dispatch through Oassis::run".into(),
            )));
        }
        let base = {
            let _s = tele.span("where_eval");
            evaluate_where_pool(&bound, self.ont, self.match_mode, &self.pool)
        };
        let mut dag = {
            let _s = tele.span("dag_build");
            Dag::new(&bound, self.ont.vocab(), &base)
        };
        let mut run_cfg = cfg.clone();
        if let Some(policy) = self.policy {
            run_cfg.policy = policy;
        }
        run_cfg.telemetry = tele.clone();
        let outcome = run_multi(&mut dag, crowd, aggregator, &run_cfg);
        let _s = tele.span("select");
        let vocab = self.ont.vocab();
        let selected: Vec<crate::Assignment> = {
            let pool: &[crate::Assignment] = if bound.all {
                &outcome.mining.significant_valid
            } else {
                &outcome.mining.valid_msps
            };
            match bound.top_k {
                None => pool.to_vec(),
                Some(k) if bound.diverse => diversify(vocab, pool, k),
                Some(k) => pool.iter().take(k).cloned().collect(),
            }
        };
        let answers: Vec<String> = selected
            .iter()
            .map(|a| match bound.format {
                OutputFormat::FactSets => a.apply(&bound).to_display(vocab),
                OutputFormat::Variables => a.to_display(&bound, vocab),
            })
            .collect();
        Ok(QueryAnswer { answers, outcome })
    }

    /// Batch pipeline: one query per pool slot over per-query crowds and
    /// a shared answer cache. Inner queries run with telemetry *off* (the
    /// workers' interleaving is non-deterministic); the coordinator
    /// records deterministic per-query aggregates after the join, in
    /// query order, so traces are bit-identical at any pool width.
    fn run_batch<C, A, F>(
        &self,
        queries: &[&str],
        make_crowd: &F,
        aggregator: &A,
        cfg: &MiningConfig,
        cache: &SharedCrowdCache,
    ) -> Vec<Result<QueryAnswer, OassisError>>
    where
        C: CrowdSource,
        A: Aggregator + Sync,
        F: Fn(usize) -> C + Sync,
    {
        let root = cfg.telemetry.span("batch");
        let tele = root.tele().clone();
        let indices: Vec<usize> = (0..queries.len()).collect();
        let results = self.pool.par_map(&indices, |&i| {
            let mut crowd = SharedCachingCrowd::new(make_crowd(i), cache);
            // each query mines with a sequential inner pool: the
            // parallelism budget is already spent at the query level
            let query_cfg = MiningConfig {
                pool: minipool::Pool::sequential(),
                telemetry: telemetry::Telemetry::off(),
                ..cfg.clone()
            };
            let engine = Oassis {
                ont: self.ont,
                match_mode: self.match_mode,
                templates: QuestionTemplates::new(),
                pool: minipool::Pool::sequential(),
                policy: self.policy,
            };
            // PANIC-OK: `i` ranges over 0..queries.len() by construction.
            engine.run_pattern_query(queries[i], &mut crowd, aggregator, &query_cfg)
        });
        if tele.is_enabled() {
            tele.count("batch.queries", queries.len() as u64);
            for r in results.iter().flatten() {
                let q = r.outcome.mining.questions as u64;
                tele.count("batch.queries_ok", 1);
                tele.count("engine.questions", q);
                tele.observe("batch.questions_per_query", q);
            }
        }
        results
    }

    /// Rule-query pipeline: prepare → WHERE → DAG → two-phase rule
    /// mining → rendering, each phase under its own telemetry span.
    fn run_rule_query<C: CrowdSource>(
        &self,
        src: &str,
        crowd: &mut C,
        cfg: &RuleMiningConfig,
        telemetry: &telemetry::Telemetry,
    ) -> Result<RuleAnswer, OassisError> {
        let root = telemetry.span("query.rules");
        let tele = root.tele();
        let bound = {
            let _s = tele.span("prepare");
            self.prepare(src)?
        };
        let base = {
            let _s = tele.span("where_eval");
            evaluate_where_pool(&bound, self.ont, self.match_mode, &self.pool)
        };
        let mut dag = {
            let _s = tele.span("dag_build");
            Dag::new(&bound, self.ont.vocab(), &base)
        };
        let outcome = {
            let _s = tele.span("mine.rules");
            run_rules(&mut dag, crowd, cfg)?
        };
        tele.count("engine.questions", outcome.questions as u64);
        let _s = tele.span("select");
        let vocab = self.ont.vocab();
        let pool: Vec<&crate::rulemine::MinedRule> =
            outcome.rules.iter().filter(|r| r.valid).collect();
        let selected: Vec<&crate::rulemine::MinedRule> = match bound.top_k {
            None => pool,
            Some(k) => pool.into_iter().take(k).collect(),
        };
        let answers: Vec<String> = selected
            .iter()
            .map(|r| {
                format!(
                    "{} ⇒ {}   (supp {:.2}, conf {:.2})",
                    r.body.to_display(vocab),
                    r.head.to_display(vocab),
                    r.support,
                    r.confidence
                )
            })
            .collect();
        Ok(RuleAnswer { answers, outcome })
    }
}

/// The answer to an OASSIS-QL rule query.
#[derive(Debug)]
pub struct RuleAnswer {
    /// Rendered `body ⇒ head` rows for the valid mined rules.
    pub answers: Vec<String>,
    /// Full rule-mining outcome.
    pub outcome: RuleOutcome,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::FixedSampleAggregator;
    use crowd::{AnswerModel, MemberBehavior, PersonalDb, SimulatedCrowd, SimulatedMember};
    use ontology::domains::figure1;

    fn u_avg(ont: &Ontology, seed: u64) -> SimulatedMember {
        let [d1, d2] = figure1::personal_dbs(ont);
        let mut tx = d1;
        for _ in 0..3 {
            tx.extend(d2.iter().cloned());
        }
        SimulatedMember::new(
            PersonalDb::from_transactions(tx),
            MemberBehavior::default(),
            AnswerModel::Exact,
            seed,
        )
    }

    #[test]
    fn end_to_end_simple_query() {
        let ont = figure1::ontology();
        let engine = Oassis::new(&ont);
        let mut crowd = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont, 1)]);
        let agg = FixedSampleAggregator { sample_size: 1 };
        let ans = engine
            .run(
                &QueryRequest::pattern(figure1::SIMPLE_QUERY),
                CrowdBinding::single(&mut crowd),
                &agg,
            )
            .unwrap()
            .into_patterns()
            .unwrap();
        assert!(
            ans.answers.iter().any(|a| a == "Biking doAt Central Park"),
            "{:?}",
            ans.answers
        );
        assert!(ans
            .answers
            .iter()
            .any(|a| a == "Feed a Monkey doAt Bronx Zoo"));
        assert!(ans.outcome.mining.complete);
    }

    #[test]
    fn select_all_returns_superset_of_msps() {
        let ont = figure1::ontology();
        let engine = Oassis::new(&ont);
        let agg = FixedSampleAggregator { sample_size: 1 };
        let all_query = figure1::SIMPLE_QUERY.replace("SELECT FACT-SETS", "SELECT FACT-SETS ALL");
        let mut crowd1 = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont, 1)]);
        let msp_ans = engine
            .run(
                &QueryRequest::pattern(figure1::SIMPLE_QUERY),
                CrowdBinding::single(&mut crowd1),
                &agg,
            )
            .unwrap()
            .into_patterns()
            .unwrap();
        let mut crowd2 = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont, 1)]);
        let all_ans = engine
            .run(
                &QueryRequest::pattern(&all_query),
                CrowdBinding::single(&mut crowd2),
                &agg,
            )
            .unwrap()
            .into_patterns()
            .unwrap();
        assert!(all_ans.answers.len() >= msp_ans.answers.len());
        // e.g. the generalization "Sport doAt Central Park" is significant
        // but not maximal
        assert!(
            all_ans
                .answers
                .iter()
                .any(|a| a == "Sport doAt Central Park"),
            "{:?}",
            all_ans.answers
        );
        assert!(!msp_ans
            .answers
            .iter()
            .any(|a| a == "Sport doAt Central Park"));
    }

    #[test]
    fn select_variables_renders_assignments() {
        let ont = figure1::ontology();
        let engine = Oassis::new(&ont);
        let agg = FixedSampleAggregator { sample_size: 1 };
        let var_query = figure1::SIMPLE_QUERY.replace("SELECT FACT-SETS", "SELECT VARIABLES");
        let mut crowd = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont, 1)]);
        let ans = engine
            .run(
                &QueryRequest::pattern(&var_query),
                CrowdBinding::single(&mut crowd),
                &agg,
            )
            .unwrap()
            .into_patterns()
            .unwrap();
        assert!(
            ans.answers
                .iter()
                .any(|a| a.contains("$x ↦ {Central Park}")),
            "{:?}",
            ans.answers
        );
        assert!(ans.answers.iter().any(|a| a.contains("$y ↦ {Biking}")));
    }

    #[test]
    fn builder_sets_mining_fields() {
        let req = QueryRequest::pattern("q")
            .threshold(0.4)
            .batch_width(3)
            .max_questions(77)
            .seed(9);
        let m = &req.options().mining;
        assert_eq!(m.threshold, Some(0.4));
        assert_eq!(m.batch_width, 3);
        assert_eq!(m.max_questions, Some(77));
        assert_eq!(m.seed, 9);
        assert_eq!(req.queries(), ["q"]);
    }

    #[test]
    fn builder_threshold_validated_by_run() {
        let ont = figure1::ontology();
        let engine = Oassis::new(&ont);
        let agg = FixedSampleAggregator { sample_size: 1 };
        let mut crowd = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont, 1)]);
        let err = engine
            .run(
                &QueryRequest::pattern(figure1::SIMPLE_QUERY).threshold(1.5),
                CrowdBinding::single(&mut crowd),
                &agg,
            )
            .unwrap_err();
        assert!(matches!(err, OassisError::Budget(_)), "{err}");
    }

    #[test]
    fn parse_errors_surface() {
        let ont = figure1::ontology();
        let engine = Oassis::new(&ont);
        assert!(engine.prepare("SELECT GARBAGE").is_err());
        assert!(engine
            .prepare("SELECT FACT-SETS WHERE $x instanceOf Mars SATISFYING $x doAt NYC WITH SUPPORT = 0.2")
            .is_err());
    }
}
