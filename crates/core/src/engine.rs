//! The high-level OASSIS engine: parse → bind → evaluate WHERE → build the
//! assignment DAG → mine the crowd → format answers.
//!
//! This is the API the examples and experiments drive; it corresponds to
//! the prototype's top-level flow of Section 6.1 (RDFLIB SPARQL engine →
//! AssignGenerator → QueueManager → CrowdCache).

use crate::aggregate::Aggregator;
use crate::cache::{SharedCachingCrowd, SharedCrowdCache};
use crate::dag::Dag;
use crate::diversify::diversify;
use crate::multi::{run_multi, MultiOutcome};
use crate::rulemine::{run_rules, RuleMiningConfig, RuleOutcome};
use crate::templates::QuestionTemplates;
use crate::vertical::MiningConfig;
use crowd::CrowdSource;
use oassis_ql::{bind, evaluate_where_pool, parse, BoundQuery, MatchMode, OutputFormat, QlError};
use ontology::Ontology;

/// The OASSIS engine over one ontology.
pub struct Oassis<'o> {
    ont: &'o Ontology,
    match_mode: MatchMode,
    templates: QuestionTemplates,
    pool: minipool::Pool,
    policy: Option<crowd::CrowdPolicy>,
}

/// The answer to an OASSIS-QL query.
#[derive(Debug)]
pub struct QueryAnswer {
    /// Rendered answer rows: the valid MSPs (or, with `ALL`, every valid
    /// significant assignment), in the format the `SELECT` clause
    /// requested.
    pub answers: Vec<String>,
    /// Full mining outcome (question counts, discovery events, MSP sets
    /// including invalid ones, …).
    pub outcome: MultiOutcome,
}

impl<'o> Oassis<'o> {
    /// Creates an engine with exact (SPARQL-style) WHERE matching.
    pub fn new(ont: &'o Ontology) -> Self {
        Oassis {
            ont,
            match_mode: MatchMode::Exact,
            templates: QuestionTemplates::new(),
            pool: minipool::Pool::sequential(),
            policy: None,
        }
    }

    /// Installs a crowd-access policy (per-question timeout, retry cap,
    /// deterministic backoff) that overrides the one in the
    /// [`MiningConfig`] passed to [`Self::execute`] /
    /// [`Self::execute_concurrent`].
    pub fn with_policy(mut self, policy: crowd::CrowdPolicy) -> Self {
        self.policy = Some(policy);
        self
    }

    /// Switches the WHERE match mode.
    pub fn with_match_mode(mut self, mode: MatchMode) -> Self {
        self.match_mode = mode;
        self
    }

    /// Installs a fork-join pool. [`Self::execute`] uses it for WHERE
    /// evaluation; [`Self::execute_concurrent`] uses it to run whole
    /// queries on parallel threads. Answers are bit-identical at any pool
    /// width.
    pub fn with_pool(mut self, pool: minipool::Pool) -> Self {
        self.pool = pool;
        self
    }

    /// Installs question templates (used by [`Self::render_question`]).
    pub fn with_templates(mut self, templates: QuestionTemplates) -> Self {
        self.templates = templates;
        self
    }

    /// The underlying ontology.
    pub fn ontology(&self) -> &'o Ontology {
        self.ont
    }

    /// Parses and binds a query without executing it.
    pub fn prepare(&self, src: &str) -> Result<BoundQuery, QlError> {
        let q = parse(src)?;
        bind(&q, self.ont)
    }

    /// Renders a crowd question in natural language.
    pub fn render_question(&self, q: &crowd::Question) -> String {
        match q {
            crowd::Question::Concrete { pattern } => {
                self.templates.render_concrete(self.ont.vocab(), pattern)
            }
            crowd::Question::Specialization { base, options } => self
                .templates
                .render_specialization(self.ont.vocab(), base, options),
        }
    }

    /// Executes a (pattern) query against a crowd, with the given
    /// aggregation black-box and mining configuration. `TOP k` queries
    /// terminate early once `k` valid MSPs are confirmed; `TOP k DIVERSE`
    /// queries mine the full answer set and return `k` mutually diverse
    /// answers. Rule queries (`IMPLYING`) must use
    /// [`execute_rules`](Self::execute_rules).
    pub fn execute<C: CrowdSource, A: Aggregator>(
        &self,
        src: &str,
        crowd: &mut C,
        aggregator: &A,
        cfg: &MiningConfig,
    ) -> Result<QueryAnswer, QlError> {
        let bound = self.prepare(src)?;
        if !bound.imp_meta.is_empty() {
            return Err(QlError::Invalid(
                "query has an IMPLYING clause; use execute_rules".into(),
            ));
        }
        let base = evaluate_where_pool(&bound, self.ont, self.match_mode, &self.pool);
        let mut dag = Dag::new(&bound, self.ont.vocab(), &base);
        let with_policy;
        let cfg = match self.policy {
            Some(policy) => {
                with_policy = MiningConfig {
                    policy,
                    ..cfg.clone()
                };
                &with_policy
            }
            None => cfg,
        };
        let outcome = run_multi(&mut dag, crowd, aggregator, cfg);
        let vocab = self.ont.vocab();
        let selected: Vec<crate::Assignment> = {
            let pool: &[crate::Assignment] = if bound.all {
                &outcome.mining.significant_valid
            } else {
                &outcome.mining.valid_msps
            };
            match bound.top_k {
                None => pool.to_vec(),
                Some(k) if bound.diverse => diversify(vocab, pool, k),
                Some(k) => pool.iter().take(k).cloned().collect(),
            }
        };
        let answers: Vec<String> = selected
            .iter()
            .map(|a| match bound.format {
                OutputFormat::FactSets => a.apply(&bound).to_display(vocab),
                OutputFormat::Variables => a.to_display(&bound, vocab),
            })
            .collect();
        Ok(QueryAnswer { answers, outcome })
    }

    /// Executes `queries` concurrently over this engine's shared ontology,
    /// one query per pool slot, all consulting (and filling) one shared
    /// [`SharedCrowdCache`]. `make_crowd(i)` builds the `i`-th query's
    /// crowd on whichever worker thread picks it up.
    ///
    /// Results come back in query order regardless of which thread ran
    /// what. Each query's mining outcome depends only on its own crowd and
    /// the crowd's answers, never on scheduling — provided the crowd
    /// members are *pure* (their answers don't depend on how many
    /// questions the shared cache absorbed; e.g. [`crowd::AnswerModel::Exact`]
    /// or [`crowd::AnswerModel::Bucketed5`] members with default
    /// behavior). With such crowds the answer set at any thread count is
    /// bit-identical to running the queries one after another.
    pub fn execute_concurrent<C, A, F>(
        &self,
        queries: &[&str],
        make_crowd: F,
        aggregator: &A,
        cfg: &MiningConfig,
        cache: &SharedCrowdCache,
    ) -> Vec<Result<QueryAnswer, QlError>>
    where
        C: CrowdSource,
        A: Aggregator + Sync,
        F: Fn(usize) -> C + Sync,
    {
        let indices: Vec<usize> = (0..queries.len()).collect();
        self.pool.par_map(&indices, |&i| {
            let mut crowd = SharedCachingCrowd::new(make_crowd(i), cache);
            // each query mines with a sequential inner pool: the
            // parallelism budget is already spent at the query level
            let query_cfg = MiningConfig {
                pool: minipool::Pool::sequential(),
                ..cfg.clone()
            };
            let engine = Oassis {
                ont: self.ont,
                match_mode: self.match_mode,
                templates: QuestionTemplates::new(),
                pool: minipool::Pool::sequential(),
                policy: self.policy,
            };
            // PANIC-OK: `i` ranges over 0..queries.len() by construction.
            engine.execute(queries[i], &mut crowd, aggregator, &query_cfg)
        })
    }

    /// Executes an association-rule query (one with `IMPLYING … AND
    /// CONFIDENCE`). Answers render as `body ⇒ head (supp, conf)`.
    pub fn execute_rules<C: CrowdSource>(
        &self,
        src: &str,
        crowd: &mut C,
        cfg: &RuleMiningConfig,
    ) -> Result<RuleAnswer, QlError> {
        let bound = self.prepare(src)?;
        let base = evaluate_where_pool(&bound, self.ont, self.match_mode, &self.pool);
        let mut dag = Dag::new(&bound, self.ont.vocab(), &base);
        let outcome = run_rules(&mut dag, crowd, cfg)?;
        let vocab = self.ont.vocab();
        let pool: Vec<&crate::rulemine::MinedRule> =
            outcome.rules.iter().filter(|r| r.valid).collect();
        let selected: Vec<&crate::rulemine::MinedRule> = match bound.top_k {
            None => pool,
            Some(k) => pool.into_iter().take(k).collect(),
        };
        let answers: Vec<String> = selected
            .iter()
            .map(|r| {
                format!(
                    "{} ⇒ {}   (supp {:.2}, conf {:.2})",
                    r.body.to_display(vocab),
                    r.head.to_display(vocab),
                    r.support,
                    r.confidence
                )
            })
            .collect();
        Ok(RuleAnswer { answers, outcome })
    }
}

/// The answer to an OASSIS-QL rule query.
#[derive(Debug)]
pub struct RuleAnswer {
    /// Rendered `body ⇒ head` rows for the valid mined rules.
    pub answers: Vec<String>,
    /// Full rule-mining outcome.
    pub outcome: RuleOutcome,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::FixedSampleAggregator;
    use crowd::{AnswerModel, MemberBehavior, PersonalDb, SimulatedCrowd, SimulatedMember};
    use ontology::domains::figure1;

    fn u_avg(ont: &Ontology, seed: u64) -> SimulatedMember {
        let [d1, d2] = figure1::personal_dbs(ont);
        let mut tx = d1;
        for _ in 0..3 {
            tx.extend(d2.iter().cloned());
        }
        SimulatedMember::new(
            PersonalDb::from_transactions(tx),
            MemberBehavior::default(),
            AnswerModel::Exact,
            seed,
        )
    }

    #[test]
    fn end_to_end_simple_query() {
        let ont = figure1::ontology();
        let engine = Oassis::new(&ont);
        let mut crowd = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont, 1)]);
        let agg = FixedSampleAggregator { sample_size: 1 };
        let ans = engine
            .execute(
                figure1::SIMPLE_QUERY,
                &mut crowd,
                &agg,
                &MiningConfig::default(),
            )
            .unwrap();
        assert!(
            ans.answers.iter().any(|a| a == "Biking doAt Central Park"),
            "{:?}",
            ans.answers
        );
        assert!(ans
            .answers
            .iter()
            .any(|a| a == "Feed a Monkey doAt Bronx Zoo"));
        assert!(ans.outcome.mining.complete);
    }

    #[test]
    fn select_all_returns_superset_of_msps() {
        let ont = figure1::ontology();
        let engine = Oassis::new(&ont);
        let agg = FixedSampleAggregator { sample_size: 1 };
        let all_query = figure1::SIMPLE_QUERY.replace("SELECT FACT-SETS", "SELECT FACT-SETS ALL");
        let mut crowd1 = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont, 1)]);
        let msp_ans = engine
            .execute(
                figure1::SIMPLE_QUERY,
                &mut crowd1,
                &agg,
                &MiningConfig::default(),
            )
            .unwrap();
        let mut crowd2 = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont, 1)]);
        let all_ans = engine
            .execute(&all_query, &mut crowd2, &agg, &MiningConfig::default())
            .unwrap();
        assert!(all_ans.answers.len() >= msp_ans.answers.len());
        // e.g. the generalization "Sport doAt Central Park" is significant
        // but not maximal
        assert!(
            all_ans
                .answers
                .iter()
                .any(|a| a == "Sport doAt Central Park"),
            "{:?}",
            all_ans.answers
        );
        assert!(!msp_ans
            .answers
            .iter()
            .any(|a| a == "Sport doAt Central Park"));
    }

    #[test]
    fn select_variables_renders_assignments() {
        let ont = figure1::ontology();
        let engine = Oassis::new(&ont);
        let agg = FixedSampleAggregator { sample_size: 1 };
        let var_query = figure1::SIMPLE_QUERY.replace("SELECT FACT-SETS", "SELECT VARIABLES");
        let mut crowd = SimulatedCrowd::new(ont.vocab(), vec![u_avg(&ont, 1)]);
        let ans = engine
            .execute(&var_query, &mut crowd, &agg, &MiningConfig::default())
            .unwrap();
        assert!(
            ans.answers
                .iter()
                .any(|a| a.contains("$x ↦ {Central Park}")),
            "{:?}",
            ans.answers
        );
        assert!(ans.answers.iter().any(|a| a.contains("$y ↦ {Biking}")));
    }

    #[test]
    fn parse_errors_surface() {
        let ont = figure1::ontology();
        let engine = Oassis::new(&ont);
        assert!(engine.prepare("SELECT GARBAGE").is_err());
        assert!(engine
            .prepare("SELECT FACT-SETS WHERE $x instanceOf Mars SATISFYING $x doAt NYC WITH SUPPORT = 0.2")
            .is_err());
    }
}
