//! The multi-user evaluation engine (Section 4.2) — the paper's
//! `QueueManager`.
//!
//! Each crowd member traverses the assignments in the same top-down order
//! as the single-user algorithm, "but inferences are done based on the
//! globally collected knowledge":
//!
//! 1. the per-member loop can terminate at any point (members leave);
//! 2. answers are recorded per assignment;
//! 3. significance is decided by a black-box [`Aggregator`];
//! 4. a member is only asked about successors of φ if φ is significant
//!    *for them* and not overall insignificant;
//! 5. an assignment joins the output when it becomes an overall MSP.
//!
//! Members start their traversal "from the overall most general
//! assignment (even if it is already classified)" and navigate to a
//! minimal unclassified one — when a general assignment is insignificant
//! for a member, its typically many successors are pruned *for that user*.

use crate::aggregate::{AggVerdict, Aggregator};
use crate::baselines::MspMonitor;
use crate::classify::{Class, Classifier};
use crate::dag::{Dag, NodeId};
use crate::manifest::{ask_with_retry, PartialManifest};
use crate::vertical::{DiscoveryEvent, MiningConfig, MiningOutcome, ValidTracker};
use crowd::{Answer, CrowdPolicy, CrowdSource, MemberId, Question};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};

/// Question-type bookkeeping (the answer-mix statistics of Section 6.3).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QuestionStats {
    /// Concrete questions answered with a support value.
    pub concrete: usize,
    /// Specialization questions answered with a chosen option.
    pub specialization: usize,
    /// Specialization questions answered "none of these".
    pub none_of_these: usize,
    /// User-guided pruning clicks.
    pub pruning: usize,
}

impl QuestionStats {
    /// Total answered questions.
    pub fn total(&self) -> usize {
        self.concrete + self.specialization + self.none_of_these + self.pruning
    }
}

/// Outcome of a multi-user run.
#[derive(Debug)]
pub struct MultiOutcome {
    /// The shared mining outcome (MSPs, questions, events, …).
    pub mining: MiningOutcome,
    /// Answer-mix statistics.
    pub question_stats: QuestionStats,
    /// Questions answered per *recruited* member (when the query carries
    /// an `ASKING` clause, only profile-matching members are recruited, so
    /// this can be shorter than the crowd).
    pub answers_per_member: Vec<usize>,
    /// Materialized nodes still unclassified when the run stopped
    /// (non-zero when the crowd was exhausted before convergence).
    pub undecided: usize,
    /// Rounds in which at least one question was asked. With a batch
    /// width above one, each member answers up to `batch_width` questions
    /// per round, so fewer rounds should reach the same MSP set.
    pub rounds: usize,
}

struct MemberState {
    id: MemberId,
    personal: Classifier,
    answered: HashSet<NodeId>,
    /// Significant nodes whose children this member already enqueued
    /// (guards the lazy descent in `next_target` against re-pushing).
    descended: HashSet<NodeId>,
    active: bool,
    /// High-priority frontier: children of nodes that became *overall*
    /// significant — answering these drives assignments to quorum.
    hot: VecDeque<NodeId>,
    /// Low-priority frontier: the roots plus this member's personal
    /// descent (successors of nodes significant *for them* but not yet
    /// overall) — served only when no quorum work is pending, so that a
    /// single member's idiosyncratic habits don't starve the crowd's
    /// shared progress.
    /// NOTE: the queues may hold duplicates (shared children of several
    /// significant parents, re-descents, and the revisit re-push of a
    /// specialization-question base). Deduplicating at push time is *not*
    /// order-preserving — a re-pushed base could previously be consumed at
    /// a mid-queue duplicate's earlier position — so duplicates are kept
    /// and filtered on pop instead. With the classifier's cached indexed
    /// lookups that pop-side `class()` filter is O(1), so the duplicates
    /// cost a queue slot, not a witness scan.
    cold: VecDeque<NodeId>,
}

/// Degradation bookkeeping for the crowd-access policy: timeout/retry
/// counters plus the nodes some member gave up on after exhausting the
/// retry budget. A give-up only removes *that member's* vote — another
/// member (or a later inference) can still classify the node.
#[derive(Default)]
struct Degradation {
    manifest: PartialManifest,
    gave_up: Vec<NodeId>,
    gave_up_set: HashSet<NodeId>,
    /// Give-ups in the current round; a round that only gave up still
    /// made monotone progress (the member's `answered` set grew), so the
    /// round loop must not treat it as a fixpoint.
    gave_up_this_round: usize,
}

impl Degradation {
    fn record_give_up(&mut self, id: NodeId) {
        self.gave_up_this_round += 1;
        if self.gave_up_set.insert(id) {
            self.gave_up.push(id);
        }
    }
}

impl MemberState {
    fn push_hot(&mut self, id: NodeId) {
        self.hot.push_back(id);
    }

    /// Re-queues a popped target at the *front* of the hot queue, so a
    /// batch-planning pass that had to defer a comparable target replays
    /// it first on the member's next turn (preserving pop order).
    fn push_front_hot(&mut self, id: NodeId) {
        self.hot.push_front(id);
    }

    fn extend_hot(&mut self, ids: impl IntoIterator<Item = NodeId>) {
        self.hot.extend(ids);
    }

    fn extend_cold(&mut self, ids: impl IntoIterator<Item = NodeId>) {
        self.cold.extend(ids);
    }

    fn pop(&mut self, hot: bool) -> Option<NodeId> {
        if hot {
            self.hot.pop_front()
        } else {
            self.cold.pop_front()
        }
    }
}

/// Runs the multi-user algorithm.
pub fn run_multi<C: CrowdSource, A: Aggregator>(
    dag: &mut Dag<'_>,
    crowd: &mut C,
    aggregator: &A,
    cfg: &MiningConfig,
) -> MultiOutcome {
    let threshold = cfg.threshold.unwrap_or(dag.query().threshold);
    let root = cfg.telemetry.span("mine.multi");
    let tele = root.tele().clone();
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut global = Classifier::new();
    let mut answers: HashMap<NodeId, Vec<(MemberId, f64)>> = HashMap::new();
    let mut tracker = ValidTracker::new(dag)
        .with_pool(cfg.pool)
        .with_telemetry(tele.clone());
    let mut events: Vec<DiscoveryEvent> = Vec::new();
    let mut monitor = MspMonitor::new();
    let mut msp_ids: Vec<NodeId> = Vec::new();
    let mut stats = QuestionStats::default();
    let mut questions = 0usize;
    let mut rounds = 0usize;
    let mut oplog = crate::oplog::OpLog::new(threshold, true);
    // ops already handed to cfg.op_tap (a prefix of oplog.ops())
    let mut tap_flushed = 0usize;
    // member of the most recent answered question: MSPs confirmed by the
    // final monitor sweep are logged under it, keeping every tick's ops
    // single-member (the canonical merge order then matches recording
    // order exactly).
    let mut last_member = MemberId(0);
    let mut newly_significant: Vec<NodeId> = Vec::new();
    let mut global_decisions = 0usize;

    let roots: VecDeque<NodeId> = dag.roots().iter().copied().collect();
    let asking = dag.query().asking.clone();
    let mut members: Vec<MemberState> = crowd
        .members()
        .into_iter()
        .filter(|&id| match &asking {
            // ASKING "label": only profile-matching members are recruited
            Some(label) => crowd.member_has_profile(id, label),
            None => true,
        })
        .map(|id| MemberState {
            id,
            personal: Classifier::new_lazy(),
            answered: HashSet::new(),
            descended: HashSet::new(),
            active: true,
            hot: roots.clone(),
            cold: VecDeque::new(),
        })
        .collect();
    let mut per_member: Vec<usize> = vec![0; members.len()];
    let speculate = crowd.supports_prefetch();
    let mut deg = Degradation::default();

    'outer: loop {
        let _round = tele.span("round");
        let tele = _round.tele();
        // Speculative execution against concurrent crowds: predict each
        // member's next question with a read-only emulation of the round
        // and hand the batch to the source, which computes the answers on
        // the worker threads while this coordinator thread is busy with
        // other members. Predictions are best-effort — the source rolls
        // back any mismatch — so outcomes are bit-identical either way.
        if speculate {
            let batch = predict_round(dag, &global, &members, &rng, cfg, questions);
            if !batch.is_empty() {
                tele.count("crowd.prefetch_batches", 1);
                tele.count("crowd.prefetched_questions", batch.len() as u64);
                crowd.prefetch(&batch);
            }
        }
        let mut asked_this_round = 0usize;
        deg.gave_up_this_round = 0;
        for mi in 0..members.len() {
            if cfg.max_questions.is_some_and(|m| questions >= m) {
                break 'outer;
            }
            // PANIC-OK: `mi` ranges over 0..members.len() by construction.
            if !members[mi].active {
                continue;
            }
            let width = cfg.batch_width.max(1);
            let mut planned: Vec<NodeId> = Vec::with_capacity(width);
            if width == 1 {
                // PANIC-OK: `mi` is in bounds, as above.
                if let Some(t) = next_target(dag, &mut global, &mut members[mi]) {
                    planned.push(t);
                }
            } else {
                // batch planning: collect up to `width` targets forming an
                // antichain under ≤. Comparable assignments can classify
                // each other (an answer about one may decide the other by
                // inference), so a comparable pop is deferred — pushed back
                // to the *front* of the hot queue, in pop order — rather
                // than asked redundantly in the same batch.
                let mut deferred: Vec<NodeId> = Vec::new();
                while planned.len() < width {
                    // PANIC-OK: `mi` is in bounds, as above.
                    let Some(t) = next_target(dag, &mut global, &mut members[mi]) else {
                        break;
                    };
                    if planned.iter().any(|&p| dag.leq(p, t) || dag.leq(t, p)) {
                        deferred.push(t);
                    } else {
                        planned.push(t);
                    }
                }
                if !deferred.is_empty() {
                    tele.count("planner.deferred", deferred.len() as u64);
                    for &d in deferred.iter().rev() {
                        // PANIC-OK: `mi` is in bounds, as above.
                        members[mi].push_front_hot(d);
                    }
                }
                if !planned.is_empty() {
                    tele.count("planner.planned", planned.len() as u64);
                }
                if cfg.debug_checks {
                    for (i, &a) in planned.iter().enumerate() {
                        for &b in planned.iter().skip(i + 1) {
                            assert!(
                                !dag.leq(a, b) && !dag.leq(b, a),
                                "batch planner invariant violated: planned targets \
                                 {a:?} and {b:?} are ≤-comparable"
                            );
                        }
                    }
                }
            }
            for target in planned {
                if cfg.max_questions.is_some_and(|m| questions >= m) {
                    break 'outer;
                }
                // batch efficiency: an answer landing after an earlier answer
                // of the same batch already classified its target is redundant
                // (record_answer will ignore it)
                let redundant = width > 1 && {
                    let view = dag.view();
                    global.class_frozen(&view, target) != Class::Unknown
                };
                // question-type policy: specialization with configured ratio
                let mut asked = false;
                if cfg.specialization_ratio > 0.0 && rng.gen_bool(cfg.specialization_ratio) {
                    let span = dag.ensure_children(target);
                    let mut options: Vec<NodeId> = Vec::new();
                    for ci in 0..span.1 {
                        // PANIC-OK: `ci` ranges over the span's own length.
                        let c = dag.child_slice(span)[ci as usize];
                        if global.class(dag, c) == Class::Unknown
                        // PANIC-OK: `mi` is in bounds, as above.
                        && !members[mi].answered.contains(&c)
                        // PANIC-OK: `mi` is in bounds, as above.
                        && members[mi].personal.class(dag, c) != Class::Insignificant
                        {
                            options.push(c);
                            if options.len() >= cfg.max_spec_options {
                                break;
                            }
                        }
                    }
                    if !options.is_empty() {
                        asked = ask_specialization(
                            dag,
                            crowd,
                            aggregator,
                            threshold,
                            &cfg.policy,
                            &mut deg,
                            // PANIC-OK: `mi` is in bounds, as above.
                            &mut members[mi],
                            &options,
                            target,
                            &mut answers,
                            &mut global,
                            &mut tracker,
                            &mut stats,
                            &mut questions,
                            &mut events,
                            &mut newly_significant,
                            &mut oplog,
                            tele,
                        );
                        if asked {
                            // the base itself is still unanswered by this
                            // member - revisit it later
                            // PANIC-OK: `mi` is in bounds, as above.
                            members[mi].push_hot(target);
                        }
                    }
                }
                if !asked {
                    asked = ask_concrete(
                        dag,
                        crowd,
                        aggregator,
                        threshold,
                        &cfg.pool,
                        &cfg.policy,
                        &mut deg,
                        // PANIC-OK: `mi` is in bounds, as above.
                        &mut members[mi],
                        target,
                        &mut answers,
                        &mut global,
                        &mut tracker,
                        &mut stats,
                        &mut questions,
                        &mut events,
                        &mut newly_significant,
                        &mut oplog,
                        tele,
                    );
                }
                if asked {
                    // PANIC-OK: per_member was sized to members.len().
                    per_member[mi] += 1;
                    asked_this_round += 1;
                    // PANIC-OK: `mi` is in bounds, as above.
                    last_member = members[mi].id;
                    if width > 1 {
                        tele.count(
                            if redundant {
                                "planner.redundant_answers"
                            } else {
                                "planner.useful_answers"
                            },
                            1,
                        );
                    }
                    // fan out the children of any node that just became
                    // globally significant to every member's queue (the
                    // QueueManager's frontier maintenance)
                    let had_transition = global_decisions != global.decisions();
                    global_decisions = global.decisions();
                    let newly: Vec<NodeId> = std::mem::take(&mut newly_significant);
                    for node in newly {
                        let span = dag.ensure_children(node);
                        // a sticky-Insignificant child would be skipped as a
                        // pure no-op on every member's pop — drop it once here
                        // instead of queueing it per member
                        let fresh: Vec<NodeId> = dag
                            .child_slice(span)
                            .iter()
                            .copied()
                            .filter(|&c| global.cached_queried(c) != Some(Class::Insignificant))
                            .collect();
                        for ms in members.iter_mut() {
                            ms.extend_hot(fresh.iter().copied());
                        }
                    }
                    // MSP entailment can only change when a global
                    // classification changed
                    if had_transition {
                        let known = msp_ids.len();
                        monitor.update(dag, &mut global, questions, &mut events, &mut msp_ids);
                        // PANIC-OK: `known` was msp_ids.len() before the update; the
                        // monitor only appends, so the range is in bounds.
                        // PANIC-OK: `known` was msp_ids.len() before the update; the monitor
                        // only appends, so the range is in bounds.
                        oplog.record_msps(questions, last_member, dag, &msp_ids[known..]);
                        // TOP k early termination (Section 8 extension)
                        if let Some(k) = dag.query().top_k {
                            if !dag.query().diverse {
                                let valid = msp_ids.iter().filter(|&&m| dag.node(m).valid).count();
                                if valid >= k {
                                    break 'outer;
                                }
                            }
                        }
                    }
                }
                if cfg.debug_checks {
                    if stats.total() != questions {
                        panic!(
                        "simulation invariant violated: question stats total {} != questions {questions}",
                        stats.total()
                    );
                    }
                    if let Some(mx) = cfg.max_questions {
                        assert!(
                        questions <= mx,
                        "simulation invariant violated: {questions} questions exceed the budget of {mx}"
                    );
                    }
                    if let Err(e) =
                        crate::invariants::check_classification_monotonicity(dag, &global)
                    {
                        panic!("simulation invariant violated: {e}");
                    }
                    if let Err(e) = crate::invariants::check_msp_maximality(dag, &global, &msp_ids)
                    {
                        panic!("simulation invariant violated: {e}");
                    }
                }
            }
        }
        if asked_this_round > 0 {
            rounds += 1;
        }
        // round-boundary durability: hand freshly recorded ops to the
        // serving layer's tap — a crash after this point replays the
        // round, a crash before it loses only this round
        if let Some(tap) = &cfg.op_tap {
            let ops = oplog.ops();
            if tap_flushed < ops.len() {
                tap.append(dag, &ops[tap_flushed..]); // PANIC-OK: tap_flushed only ever takes values of ops.len(), which never shrinks.
                tap_flushed = ops.len();
            }
        }
        if asked_this_round == 0 && deg.gave_up_this_round == 0 {
            break;
        }
    }

    // The completeness check expands the remaining significant frontier,
    // which may generate children that are classified purely by inference;
    // a final monitor sweep then confirms the last MSPs.
    let complete =
        crate::vertical::find_minimal_unclassified(dag, &mut global, &cfg.pool, &HashSet::new())
            .is_none();
    let known = msp_ids.len();
    monitor.update(dag, &mut global, questions, &mut events, &mut msp_ids);
    // PANIC-OK: `known` was msp_ids.len() before the update; the monitor
    // only appends, so the range is in bounds.
    oplog.record_msps(questions, last_member, dag, &msp_ids[known..]);
    oplog.set_complete(complete);
    // final tap flush: the completeness sweep may have confirmed MSPs
    // after the last round boundary
    if let Some(tap) = &cfg.op_tap {
        let ops = oplog.ops();
        if tap_flushed < ops.len() {
            tap.append(dag, &ops[tap_flushed..]); // PANIC-OK: tap_flushed only ever takes values of ops.len(), which never shrinks.
        }
    }
    let manifest = {
        // frozen sweep: a gave-up node later classified through another
        // member or by inference is answered, not missing
        let mut manifest = deg.manifest;
        let view = dag.view();
        manifest.unanswered = deg
            .gave_up
            .iter()
            .copied()
            .filter(|&id| global.class_frozen(&view, id) == Class::Unknown)
            .map(|id| view.node(id).assignment.clone())
            .collect();
        manifest
    };
    let undecided = {
        // frozen sweep: no classification changes past this point, so the
        // count shards over the read-only view
        let view = dag.view();
        let ids: Vec<NodeId> = dag.node_ids().collect();
        cfg.pool
            .par_map(&ids, |&i| global.class_frozen(&view, i) == Class::Unknown)
            .into_iter()
            .filter(|&u| u)
            .count()
    };
    let msps: Vec<crate::Assignment> = msp_ids
        .iter()
        .map(|&i| dag.node(i).assignment.clone())
        .collect();
    let valid_msps: Vec<crate::Assignment> = msp_ids
        .iter()
        .filter(|&&i| dag.node(i).valid)
        .map(|&i| dag.node(i).assignment.clone())
        .collect();
    let significant_valid = crate::vertical::significant_valid_assignments(dag, &global, &cfg.pool);
    let total_valid = tracker.len();
    let valid_mult_nodes = dag
        .node_ids()
        .filter(|&i| dag.node(i).valid && !dag.node(i).assignment.is_base())
        .count();
    if tele.is_enabled() {
        let (hits, misses) = global.cache_stats();
        tele.count("classifier.cache_hits", hits);
        tele.count("classifier.cache_misses", misses);
        let gs = dag.stats();
        tele.count("dag.nodes_created", gs.nodes_created as u64);
        tele.count("dag.nodes_expanded", gs.nodes_expanded as u64);
        tele.count("dag.admits_calls", gs.admits_calls as u64);
        tele.count("validity.bases_classified", tracker.total_classified as u64);
        for &n in &per_member {
            tele.observe("engine.answers_per_member", n as u64);
        }
    }
    MultiOutcome {
        mining: MiningOutcome {
            msps,
            valid_msps,
            significant_valid,
            total_valid,
            valid_mult_nodes,
            questions,
            events,
            gen_stats: dag.stats(),
            nodes_materialized: dag.len(),
            complete,
            manifest,
            ops: oplog,
        },
        question_stats: stats,
        answers_per_member: per_member,
        undecided,
        rounds,
    }
}

/// What a read-only emulation of the batch planner could determine.
struct PeekBatch {
    /// Predicted question targets, in ask order (an antichain under ≤;
    /// at most the batch width, empty when the frontier is exhausted).
    targets: Vec<NodeId>,
    /// The emulation hit a significant node whose children are not yet
    /// generated: the real traversal will mutate the DAG there, so any
    /// *further* target (for this and every later member) cannot be
    /// predicted. Targets collected before the cut are still valid — the
    /// real planner pops them before reaching the mutation point, and the
    /// ask loop asks them first, so they remain a correct chain prefix.
    cut: bool,
}

/// Read-only emulation of the batch planner: walks the member's queues
/// without popping, descends through significant nodes via a *virtual*
/// descended-set, never generates children, and applies the planner's
/// antichain rule (a candidate ≤-comparable to an accepted target is
/// deferred, hence not asked this round). Value-equivalent to the real
/// traversal whenever the global state does not change before the
/// member's real turn; any divergence only costs a rolled-back
/// speculation.
fn peek_batch(
    view: &crate::dag::DagView<'_>,
    global: &Classifier,
    m: &MemberState,
    width: usize,
) -> PeekBatch {
    let mut targets: Vec<NodeId> = Vec::new();
    let mut virt_descended: HashSet<NodeId> = HashSet::new();
    for hot in [true, false] {
        let queue = if hot { &m.hot } else { &m.cold };
        let mut extra: Vec<NodeId> = Vec::new();
        let mut i = 0usize;
        loop {
            let id = if i < queue.len() {
                // PANIC-OK: guarded by `i < queue.len()` just above.
                queue[i]
            } else if let Some(&e) = extra.get(i - queue.len()) {
                e
            } else {
                break;
            };
            i += 1;
            match global.class_frozen(view, id) {
                Class::Insignificant => continue,
                Class::Significant => {
                    if !m.descended.contains(&id) && virt_descended.insert(id) {
                        match view.children_if_generated(id) {
                            Some(children) => extra.extend_from_slice(children),
                            None => return PeekBatch { targets, cut: true },
                        }
                    }
                    continue;
                }
                Class::Unknown => {}
            }
            if m.personal.class_frozen(view, id) == Class::Insignificant {
                continue;
            }
            if m.answered.contains(&id) {
                continue;
            }
            // the planner defers ≤-comparable pops (including duplicate
            // queue entries — ≤ is reflexive), so they are not asked this
            // round
            if targets.iter().any(|&p| view.leq(p, id) || view.leq(id, p)) {
                continue;
            }
            targets.push(id);
            if targets.len() >= width {
                return PeekBatch {
                    targets,
                    cut: false,
                };
            }
        }
    }
    PeekBatch {
        targets,
        cut: false,
    }
}

/// Predicts the questions the coming round will ask — one per member at
/// most — by replaying the round's policy against a *clone* of the policy
/// RNG and frozen classifier reads. The real RNG and all engine state are
/// untouched; a wrong guess is rolled back by the crowd source.
fn predict_round(
    dag: &Dag<'_>,
    global: &Classifier,
    members: &[MemberState],
    policy_rng: &StdRng,
    cfg: &MiningConfig,
    questions: usize,
) -> Vec<(MemberId, Question)> {
    let view = dag.view();
    let mut rng = policy_rng.clone();
    let width = cfg.batch_width.max(1);
    let mut batch: Vec<(MemberId, Question)> = Vec::new();
    'members: for m in members {
        if cfg.max_questions.is_some_and(|mx| questions >= mx) {
            break;
        }
        if !m.active {
            continue;
        }
        let peek = peek_batch(&view, global, m, width);
        for target in &peek.targets {
            let target = *target;
            let mut question: Option<Question> = None;
            if cfg.specialization_ratio > 0.0 && rng.gen_bool(cfg.specialization_ratio) {
                match view.children_if_generated(target) {
                    Some(children) => {
                        let options: Vec<NodeId> = children
                            .iter()
                            .copied()
                            .filter(|&c| {
                                global.class_frozen(&view, c) == Class::Unknown
                                    && !m.answered.contains(&c)
                                    && m.personal.class_frozen(&view, c) != Class::Insignificant
                            })
                            .take(cfg.max_spec_options)
                            .collect();
                        if !options.is_empty() {
                            question = Some(Question::Specialization {
                                base: view.node(target).assignment.apply(dag.query()),
                                options: options
                                    .iter()
                                    .map(|&o| view.node(o).assignment.apply(dag.query()))
                                    .collect(),
                            });
                        }
                    }
                    // the engine will generate these children on the
                    // member's real turn; the offered options can't be
                    // predicted (the RNG draw above still mirrors the real
                    // loop's draw)
                    None => {
                        if width == 1 {
                            continue 'members;
                        }
                        // mid-batch the member's remaining chain (and the
                        // cloned RNG) can no longer stay aligned — stop
                        // predicting this round
                        break 'members;
                    }
                }
            }
            let question = question.unwrap_or_else(|| Question::Concrete {
                pattern: view.node(target).assignment.apply(dag.query()),
            });
            batch.push((m.id, question));
        }
        if peek.cut {
            // past this point the cloned RNG can no longer stay aligned
            // with the real policy draws — stop predicting this round
            break;
        }
    }
    batch
}

/// Finds the member's next question by draining their pending frontier:
/// nodes enter the queue when the member starts (the roots), when one of
/// the member's own answers is significant (personal descent), or when
/// any node becomes *overall* significant (fan-out in the main loop).
/// Nodes that are globally classified, personally excluded (rule 4 — the
/// personal classifier inherits insignificance downward), or already
/// answered are skipped on pop.
fn next_target(dag: &mut Dag<'_>, global: &mut Classifier, m: &mut MemberState) -> Option<NodeId> {
    for hot in [true, false] {
        while let Some(id) = m.pop(hot) {
            // Most pops hit a node the crowd already classified — read the
            // sticky verdict straight from the cache and only fall back to
            // the full (stamping) lookup on unqueried nodes. Identical
            // values either way; the fast path skips per-call overhead on
            // the millions-of-pops filter.
            let cls = match global.cached_queried(id) {
                Some(c) => c,
                None => global.class(dag, id),
            };
            match cls {
                Class::Insignificant => continue,
                Class::Significant => {
                    // descend lazily: a node can become significant *by
                    // inference* (a spec-question jump decided a deeper
                    // witness first), in which case no fan-out transition
                    // ever fired for it — its children must still be
                    // explored.
                    if m.descended.insert(id) {
                        let span = dag.ensure_children(id);
                        // sticky-Insignificant children are pop-side no-ops
                        let children =
                            dag.child_slice(span).iter().copied().filter(|&c| {
                                global.cached_queried(c) != Some(Class::Insignificant)
                            });
                        if hot {
                            m.extend_hot(children);
                        } else {
                            m.extend_cold(children);
                        }
                    }
                    continue;
                }
                Class::Unknown => {}
            }
            if m.personal.class(dag, id) == Class::Insignificant {
                continue;
            }
            if m.answered.contains(&id) {
                continue;
            }
            return Some(id);
        }
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn record_answer<A: Aggregator>(
    dag: &mut Dag<'_>,
    aggregator: &A,
    threshold: f64,
    node: NodeId,
    member: MemberId,
    support: f64,
    answers: &mut HashMap<NodeId, Vec<(MemberId, f64)>>,
    global: &mut Classifier,
    tracker: &mut ValidTracker,
    questions: usize,
    events: &mut Vec<DiscoveryEvent>,
    newly_significant: &mut Vec<NodeId>,
    oplog: &mut crate::oplog::OpLog,
) {
    oplog.record(
        questions,
        member,
        node,
        crate::oplog::OpVerdict::Support { support },
    );
    let entry = answers.entry(node).or_default();
    entry.push((member, support));
    let verdict = aggregator.verdict(entry, threshold);
    if verdict == AggVerdict::Undecided || global.class(dag, node) != Class::Unknown {
        return;
    }
    let sig = verdict == AggVerdict::Significant;
    if sig {
        global.mark_significant(dag, node);
        newly_significant.push(node);
    } else {
        global.mark_insignificant(dag, node);
    }
    if tracker.witness(dag, node, sig) {
        events.push(DiscoveryEvent {
            question: questions,
            kind: crate::vertical::DiscoveryKind::ValidClassified {
                total: tracker.total_classified,
            },
        });
    }
}

#[allow(clippy::too_many_arguments)]
fn ask_concrete<C: CrowdSource, A: Aggregator>(
    dag: &mut Dag<'_>,
    crowd: &mut C,
    aggregator: &A,
    threshold: f64,
    pool: &minipool::Pool,
    policy: &CrowdPolicy,
    deg: &mut Degradation,
    m: &mut MemberState,
    target: NodeId,
    answers: &mut HashMap<NodeId, Vec<(MemberId, f64)>>,
    global: &mut Classifier,
    tracker: &mut ValidTracker,
    stats: &mut QuestionStats,
    questions: &mut usize,
    events: &mut Vec<DiscoveryEvent>,
    newly_significant: &mut Vec<NodeId>,
    oplog: &mut crate::oplog::OpLog,
    tele: &telemetry::Telemetry,
) -> bool {
    let pattern = dag.node(target).assignment.apply(dag.query());
    let question = Question::Concrete { pattern };
    let answer = ask_with_retry(
        crowd,
        m.id,
        &question,
        policy,
        &mut deg.manifest.timeouts,
        &mut deg.manifest.retries,
        tele,
    );
    match answer {
        Answer::Support { support, more_tip } => {
            *questions += 1;
            stats.concrete += 1;
            tele.count("engine.questions", 1);
            tele.count("questions.concrete", 1);
            m.answered.insert(target);
            if support >= threshold {
                m.personal.mark_significant(dag, target);
                if let Some(tip) = more_tip {
                    dag.attach_more_tip(target, tip);
                }
                // personal descent (rule 4): this member may be asked
                // about the successors — low priority, so quorum work on
                // the shared frontier runs first
                let span = dag.ensure_children(target);
                m.extend_cold(
                    dag.child_slice(span)
                        .iter()
                        .copied()
                        .filter(|&c| global.cached_queried(c) != Some(Class::Insignificant)),
                );
            } else {
                m.personal.mark_insignificant(dag, target);
            }
            record_answer(
                dag,
                aggregator,
                threshold,
                target,
                m.id,
                support,
                answers,
                global,
                tracker,
                *questions,
                events,
                newly_significant,
                oplog,
            );
            true
        }
        Answer::Irrelevant { elem } => {
            *questions += 1;
            stats.pruning += 1;
            tele.count("engine.questions", 1);
            tele.count("questions.pruning", 1);
            m.answered.insert(target);
            oplog.record(
                *questions,
                m.id,
                NodeId::SENTINEL,
                crate::oplog::OpVerdict::NoAnswer,
            );
            m.personal.prune_elem(dag, elem);
            // The click answers *every* assignment involving the element
            // (or a specialization) at once for this member — feed those
            // implicit 0-answers to the aggregator for all materialized
            // nodes, so pruned cones reach quorum without further
            // questions (Section 6.2's bulk effect). A node holds a
            // specialization of `elem` in some slot exactly when `elem`'s
            // bit is set in that slot's ancestor-closure fingerprint, so
            // the per-node test is one bit probe per slot.
            let affected: Vec<NodeId> = {
                // the per-node probe is a pure read — shard it across the
                // pool and merge the hits back in node-id order
                let view = dag.view();
                let vocab = view.vocab();
                let space = view.fp_space();
                let wps = space.words_per_slot();
                let ebit_word = elem.index() / 64;
                let ebit_mask = 1u64 << (elem.index() % 64);
                let ids: Vec<NodeId> = view.node_ids().collect();
                let hits = pool.par_map(&ids, |&id| {
                    let words = view.fp_words(id);
                    let hit_value = (0..space.num_slots()).any(|si| {
                        // PANIC-OK: fingerprint layout fixes words.len() at
                        // num_slots * wps with ebit_word < elem_words <= wps.
                        words[si * wps + ebit_word] & ebit_mask != 0
                    });
                    hit_value
                        || view.node(id).assignment.more().iter().any(|f| {
                            vocab.elem_leq(elem, f.subject) || vocab.elem_leq(elem, f.object)
                        })
                });
                ids.into_iter()
                    .zip(hits)
                    .filter_map(|(id, hit)| hit.then_some(id))
                    .collect()
            };
            for id in affected {
                if m.answered.insert(id) {
                    record_answer(
                        dag,
                        aggregator,
                        threshold,
                        id,
                        m.id,
                        0.0,
                        answers,
                        global,
                        tracker,
                        *questions,
                        events,
                        newly_significant,
                        oplog,
                    );
                }
            }
            true
        }
        Answer::Unavailable => {
            m.active = false;
            false
        }
        Answer::NoResponse => {
            // retries exhausted: this member gives up on the target
            // (another member can still answer it); no question counted
            m.answered.insert(target);
            deg.record_give_up(target);
            false
        }
        _ => unreachable!("non-concrete answer to a concrete question"),
    }
}

#[allow(clippy::too_many_arguments)]
fn ask_specialization<C: CrowdSource, A: Aggregator>(
    dag: &mut Dag<'_>,
    crowd: &mut C,
    aggregator: &A,
    threshold: f64,
    policy: &CrowdPolicy,
    deg: &mut Degradation,
    m: &mut MemberState,
    options: &[NodeId],
    base: NodeId,
    answers: &mut HashMap<NodeId, Vec<(MemberId, f64)>>,
    global: &mut Classifier,
    tracker: &mut ValidTracker,
    stats: &mut QuestionStats,
    questions: &mut usize,
    events: &mut Vec<DiscoveryEvent>,
    newly_significant: &mut Vec<NodeId>,
    oplog: &mut crate::oplog::OpLog,
    tele: &telemetry::Telemetry,
) -> bool {
    let q = Question::Specialization {
        base: dag.node(base).assignment.apply(dag.query()),
        options: options
            .iter()
            .map(|&o| dag.node(o).assignment.apply(dag.query()))
            .collect(),
    };
    let answer = ask_with_retry(
        crowd,
        m.id,
        &q,
        policy,
        &mut deg.manifest.timeouts,
        &mut deg.manifest.retries,
        tele,
    );
    match answer {
        Answer::Specialized { choice, support } => {
            *questions += 1;
            stats.specialization += 1;
            tele.count("engine.questions", 1);
            tele.count("questions.specialization", 1);
            // PANIC-OK: callers pass a non-empty options slice and the
            // clamp keeps any crowd-supplied choice in bounds.
            let chosen = options[choice.min(options.len() - 1)];
            m.answered.insert(chosen);
            if support >= threshold {
                m.personal.mark_significant(dag, chosen);
                let span = dag.ensure_children(chosen);
                m.extend_cold(
                    dag.child_slice(span)
                        .iter()
                        .copied()
                        .filter(|&c| global.cached_queried(c) != Some(Class::Insignificant)),
                );
            } else {
                m.personal.mark_insignificant(dag, chosen);
            }
            record_answer(
                dag,
                aggregator,
                threshold,
                chosen,
                m.id,
                support,
                answers,
                global,
                tracker,
                *questions,
                events,
                newly_significant,
                oplog,
            );
            true
        }
        Answer::NoneOfThese => {
            *questions += 1;
            stats.none_of_these += 1;
            tele.count("engine.questions", 1);
            tele.count("questions.none_of_these", 1);
            for &o in options {
                m.answered.insert(o);
                m.personal.mark_insignificant(dag, o);
                record_answer(
                    dag,
                    aggregator,
                    threshold,
                    o,
                    m.id,
                    0.0,
                    answers,
                    global,
                    tracker,
                    *questions,
                    events,
                    newly_significant,
                    oplog,
                );
            }
            true
        }
        Answer::Irrelevant { elem } => {
            *questions += 1;
            stats.pruning += 1;
            tele.count("engine.questions", 1);
            tele.count("questions.pruning", 1);
            oplog.record(
                *questions,
                m.id,
                NodeId::SENTINEL,
                crate::oplog::OpVerdict::NoAnswer,
            );
            m.personal.prune_elem(dag, elem);
            true
        }
        Answer::Unavailable => {
            m.active = false;
            false
        }
        // spec timeout: nothing classified, no give-up — the caller falls
        // back to a concrete probe of the base, whose own give-up path
        // guarantees progress
        Answer::NoResponse => false,
        _ => unreachable!("support answer to a specialization question"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::FixedSampleAggregator;
    use crate::synth::{plant_msps, synthetic_domain, MspDistribution, PlantedOracle};
    use crowd::{AnswerModel, MemberBehavior, PersonalDb, SimulatedCrowd, SimulatedMember};
    use oassis_ql::{bind, evaluate_where, parse, MatchMode};
    use ontology::domains::figure1;

    /// The u_avg member of Example 4.6: D_u1 plus three copies of D_u2
    /// makes every support the exact average of u1 and u2.
    fn u_avg(ont: &ontology::Ontology, seed: u64) -> SimulatedMember {
        let [d1, d2] = figure1::personal_dbs(ont);
        let mut tx = d1;
        for _ in 0..3 {
            tx.extend(d2.iter().cloned());
        }
        SimulatedMember::new(
            PersonalDb::from_transactions(tx),
            MemberBehavior::default(),
            AnswerModel::Exact,
            seed,
        )
    }

    #[test]
    fn two_member_running_example() {
        // Two identical averaged members with a 2-answer quorum: the
        // multi-user engine must converge to the single-user MSPs.
        let ont = figure1::ontology();
        let q = parse(figure1::SIMPLE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let members = vec![u_avg(&ont, 1), u_avg(&ont, 2)];
        let mut crowd = SimulatedCrowd::new(ont.vocab(), members);
        let agg = FixedSampleAggregator { sample_size: 2 };
        let out = run_multi(&mut dag, &mut crowd, &agg, &MiningConfig::default());
        assert!(out.mining.complete, "undecided: {}", out.undecided);
        let rendered: Vec<String> = out
            .mining
            .msps
            .iter()
            .map(|m| m.apply(&b).to_display(ont.vocab()))
            .collect();
        assert!(
            rendered.iter().any(|r| r == "Biking doAt Central Park"),
            "{rendered:?}"
        );
        assert!(rendered.iter().any(|r| r == "Ball Game doAt Central Park"));
        assert!(rendered.iter().any(|r| r == "Feed a Monkey doAt Bronx Zoo"));
        assert!(!rendered.iter().any(|r| r.contains("Basketball")));
        // both members contributed
        assert!(out.answers_per_member.iter().all(|&n| n > 0));
        assert_eq!(out.question_stats.total(), out.mining.questions);
    }

    #[test]
    fn rule_4_keeps_personally_insignificant_regions_unexplored() {
        // With the real u1/u2 and a 2-answer quorum, successors of a node
        // that is insignificant for one member can never reach quorum —
        // the run ends incomplete with undecided nodes, and the member
        // was never asked below their personal cut (rule 4 of §4.2).
        let ont = figure1::ontology();
        let q = parse(figure1::SIMPLE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let [d1, d2] = figure1::personal_dbs(&ont);
        let members = vec![
            SimulatedMember::new(
                PersonalDb::from_transactions(d1),
                MemberBehavior::default(),
                AnswerModel::Exact,
                1,
            ),
            SimulatedMember::new(
                PersonalDb::from_transactions(d2),
                MemberBehavior::default(),
                AnswerModel::Exact,
                2,
            ),
        ];
        let mut crowd = SimulatedCrowd::new(ont.vocab(), members);
        let agg = FixedSampleAggregator { sample_size: 2 };
        let out = run_multi(&mut dag, &mut crowd, &agg, &MiningConfig::default());
        // (CP, Biking) is personally insignificant for u1 (1/3 < 0.4) but
        // globally significant (5/12): its multiplicity successors get at
        // most one answer and stay undecided.
        assert!(!out.mining.complete);
        assert!(out.undecided > 0);
    }

    #[test]
    fn multi_user_agrees_with_single_oracle_user() {
        let d = synthetic_domain(100, 5, 0);
        let q = parse(&d.query).unwrap();
        let b = bind(&q, &d.ontology).unwrap();
        let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
        let mut full = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        full.materialize_all();
        let planted = plant_msps(&mut full, 6, true, MspDistribution::Uniform, 5);
        let patterns: Vec<_> = planted
            .iter()
            .map(|&id| full.node(id).assignment.apply(&b))
            .collect();

        // 5 identical oracle members, aggregator requires 5 answers
        let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        let mut oracle = PlantedOracle::new(d.ontology.vocab(), patterns.clone(), 5, 0);
        let agg = FixedSampleAggregator { sample_size: 5 };
        let out = run_multi(&mut dag, &mut oracle, &agg, &MiningConfig::default());
        assert!(out.mining.complete);
        let got: HashSet<String> = out
            .mining
            .msps
            .iter()
            .map(|m| m.apply(&b).to_display(d.ontology.vocab()))
            .collect();
        let expected: HashSet<String> = planted
            .iter()
            .map(|&id| {
                full.node(id)
                    .assignment
                    .apply(&b)
                    .to_display(d.ontology.vocab())
            })
            .collect();
        assert_eq!(got, expected);
        // every classified node took 5 answers: questions ≈ 5 × unique
        assert!(out.mining.questions >= 5);
    }

    #[test]
    fn members_leaving_leaves_undecided_nodes() {
        let ont = figure1::ontology();
        let q = parse(figure1::SIMPLE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let [d1, d2] = figure1::personal_dbs(&ont);
        let members = vec![
            SimulatedMember::new(
                PersonalDb::from_transactions(d1),
                MemberBehavior {
                    session_limit: Some(2),
                    ..Default::default()
                },
                AnswerModel::Exact,
                1,
            ),
            SimulatedMember::new(
                PersonalDb::from_transactions(d2),
                MemberBehavior {
                    session_limit: Some(2),
                    ..Default::default()
                },
                AnswerModel::Exact,
                2,
            ),
        ];
        let mut crowd = SimulatedCrowd::new(ont.vocab(), members);
        let agg = FixedSampleAggregator { sample_size: 2 };
        let out = run_multi(&mut dag, &mut crowd, &agg, &MiningConfig::default());
        assert!(!out.mining.complete);
        assert!(out.undecided > 0);
        assert!(out.mining.questions <= 4);
    }

    #[test]
    fn disagreeing_members_average_out() {
        // u1's personal support for Feed-a-Monkey@BronxZoo is 3/6 = 0.5;
        // u2's is 0.5 too. For Pasta@Pine: u1 = 2/6, u2 = 1/2 →
        // avg ≈ 0.417 ≥ 0.4. For Biking: avg = 5/12 ≥ 0.4 even though u1
        // alone (1/3) is below the threshold — the aggregate decides.
        let ont = figure1::ontology();
        let src = r#"
SELECT FACT-SETS
WHERE
  $y subClassOf* Activity
SATISFYING
  $y doAt "Central Park"
WITH SUPPORT = 0.4
"#;
        let q = parse(src).unwrap();
        let b = bind(&q, &ont).unwrap();
        let base = evaluate_where(&b, &ont, MatchMode::Exact);
        let mut dag = Dag::new(&b, ont.vocab(), &base);
        let [d1, d2] = figure1::personal_dbs(&ont);
        let members = vec![
            SimulatedMember::new(
                PersonalDb::from_transactions(d1),
                MemberBehavior::default(),
                AnswerModel::Exact,
                1,
            ),
            SimulatedMember::new(
                PersonalDb::from_transactions(d2),
                MemberBehavior::default(),
                AnswerModel::Exact,
                2,
            ),
        ];
        let mut crowd = SimulatedCrowd::new(ont.vocab(), members);
        let agg = FixedSampleAggregator { sample_size: 2 };
        let out = run_multi(&mut dag, &mut crowd, &agg, &MiningConfig::default());
        let rendered: Vec<String> = out
            .mining
            .msps
            .iter()
            .map(|m| m.apply(&b).to_display(ont.vocab()))
            .collect();
        // Biking is an MSP despite u1 alone being under the threshold
        assert!(
            rendered.iter().any(|r| r == "Biking doAt Central Park"),
            "{rendered:?}"
        );
    }
}
