//! Natural-language question rendering (Section 6.2).
//!
//! "Questions … are automatically translated into a natural language
//! question using templates. These templates are domain-specific, and can
//! be manually created in advance." — e.g. the assignment φ17 renders as
//! *"How often do you engage in ball games in Central Park?"*.

use ontology::{PatternFact, PatternSet, RelId, Vocabulary};
use std::collections::HashMap;

/// Domain-specific phrase templates, one per relation. `{s}` and `{o}`
/// are replaced by the subject/object element names (lower-cased unless
/// the name looks like a proper noun); wildcards render as "something".
#[derive(Debug, Clone, Default)]
pub struct QuestionTemplates {
    by_rel: HashMap<RelId, String>,
    fallback: Option<String>,
}

impl QuestionTemplates {
    /// Empty template set (everything uses the generic fallback).
    pub fn new() -> Self {
        Self::default()
    }

    /// The running example's travel-domain templates.
    pub fn travel_defaults(vocab: &Vocabulary) -> Self {
        let mut t = Self::new();
        if let Some(r) = vocab.rel_id("doAt") {
            t.set(r, "{s} in {o}");
        }
        if let Some(r) = vocab.rel_id("eatAt") {
            t.set(r, "eat {s} at {o}");
        }
        t
    }

    /// Templates for the culinary evaluation domain ("How often do you
    /// have dish X with drink Y?").
    pub fn culinary_defaults(vocab: &Vocabulary) -> Self {
        let mut t = Self::new();
        if let Some(r) = vocab.rel_id("servedWith") {
            t.set(r, "have {s} together with {o}");
        }
        t
    }

    /// Templates for the self-treatment evaluation domain.
    pub fn self_treatment_defaults(vocab: &Vocabulary) -> Self {
        let mut t = Self::new();
        if let Some(r) = vocab.rel_id("takenFor") {
            t.set(r, "take {s} to relieve {o}");
        }
        t
    }

    /// Sets the template for one relation.
    pub fn set(&mut self, rel: RelId, template: &str) {
        self.by_rel.insert(rel, template.to_owned());
    }

    /// Sets the fallback template (default: `"{s} {r} {o}"`).
    pub fn set_fallback(&mut self, template: &str) {
        self.fallback = Some(template.to_owned());
    }

    fn phrase(&self, vocab: &Vocabulary, p: &PatternFact) -> String {
        let subj = p
            .subject
            .map_or("something".to_owned(), |e| humanize(vocab.elem_name(e)));
        let obj = p
            .object
            .map_or("somewhere".to_owned(), |e| vocab.elem_name(e).to_owned());
        let rel_name = p
            .rel
            .map_or("do".to_owned(), |r| vocab.rel_name(r).to_owned());
        let template = p
            .rel
            .and_then(|r| self.by_rel.get(&r).cloned())
            .or_else(|| self.fallback.clone())
            .unwrap_or_else(|| "{s} {r} {o}".to_owned());
        template
            .replace("{s}", &subj)
            .replace("{r}", &rel_name)
            .replace("{o}", &obj)
    }

    /// Renders a concrete question: *"How often do you ⟨…⟩ and also
    /// ⟨…⟩?"*.
    pub fn render_concrete(&self, vocab: &Vocabulary, pattern: &PatternSet) -> String {
        if pattern.is_empty() {
            return "How often do you do anything at all?".to_owned();
        }
        let parts: Vec<String> = pattern.iter().map(|p| self.phrase(vocab, p)).collect();
        format!("How often do you {}?", parts.join(" and also "))
    }

    /// Renders a specialization question: *"What type of … do you …? How
    /// often do you do that?"* with the options as auto-completion
    /// suggestions.
    pub fn render_specialization(
        &self,
        vocab: &Vocabulary,
        base: &PatternSet,
        options: &[PatternSet],
    ) -> String {
        let base_part = self.render_concrete(vocab, base);
        let base_part = base_part
            .trim_start_matches("How often do you ")
            .trim_end_matches('?');
        let opts: Vec<String> = options
            .iter()
            .map(|o| self.render_concrete(vocab, o))
            .collect();
        format!(
            "Can you be more specific about how you {base_part}? How often do you do that? (suggestions: {})",
            opts.join(" / ")
        )
    }
}

/// Lower-case a class-like name ("Ball Game" → "ball games" is beyond us;
/// we lower-case multi-word class names but keep names containing digits
/// or starting mid-sentence-capitalized proper nouns — heuristically,
/// names whose every word is capitalized and that appear after `instanceOf`
/// would be proper; since we cannot know, we lower-case only all-alpha
/// names of length > 3 that are not all-caps).
fn humanize(name: &str) -> String {
    let proper = name.chars().any(|c| c.is_ascii_digit())
        || name.len() <= 3
        || name.chars().all(|c| c.is_uppercase() || c.is_whitespace());
    if proper {
        name.to_owned()
    } else {
        name.to_lowercase()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontology::domains::figure1;
    use ontology::PatternSet;

    #[test]
    fn renders_the_phi17_question() {
        // "How often do you engage in ball games in Central Park?" — our
        // template renders the equivalent "ball game in Central Park".
        let ont = figure1::ontology();
        let v = ont.vocab();
        let t = QuestionTemplates::travel_defaults(v);
        let p = PatternSet::from_facts([v.fact("Ball Game", "doAt", "Central Park").unwrap()]);
        assert_eq!(
            t.render_concrete(v, &p),
            "How often do you ball game in Central Park?"
        );
    }

    #[test]
    fn renders_bundled_questions() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let t = QuestionTemplates::travel_defaults(v);
        let p = PatternSet::from_facts([
            v.fact("Biking", "doAt", "Central Park").unwrap(),
            v.fact("Falafel", "eatAt", "Maoz Veg").unwrap(),
        ]);
        let s = t.render_concrete(v, &p);
        assert!(s.starts_with("How often do you "));
        assert!(s.contains(" and also "));
        assert!(s.contains("biking in Central Park"));
        assert!(s.contains("eat falafel at Maoz Veg"));
    }

    #[test]
    fn wildcards_render_as_something() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let t = QuestionTemplates::travel_defaults(v);
        let p = PatternSet::from_iter([ontology::PatternFact {
            subject: None,
            rel: v.rel_id("eatAt"),
            object: v.elem_id("Maoz Veg"),
        }]);
        assert_eq!(
            t.render_concrete(v, &p),
            "How often do you eat something at Maoz Veg?"
        );
    }

    #[test]
    fn fallback_template_used_for_unknown_relations() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let t = QuestionTemplates::new();
        let p = PatternSet::from_facts([v.fact("Central Park", "inside", "NYC").unwrap()]);
        let s = t.render_concrete(v, &p);
        assert!(s.contains("inside"), "{s}");
    }

    #[test]
    fn domain_default_templates() {
        use ontology::domains::{culinary, self_treatment, DomainScale};
        let c = culinary(DomainScale::small());
        let t = QuestionTemplates::culinary_defaults(c.ontology.vocab());
        let v = c.ontology.vocab();
        let p = PatternSet::from_facts([v.fact("DishKind2", "servedWith", "DrinkKind3").unwrap()]);
        // names with digits are kept verbatim by the humanizer
        assert_eq!(
            t.render_concrete(v, &p),
            "How often do you have DishKind2 together with DrinkKind3?"
        );
        let st = self_treatment(DomainScale::small());
        let t = QuestionTemplates::self_treatment_defaults(st.ontology.vocab());
        let v = st.ontology.vocab();
        let p =
            PatternSet::from_facts([v.fact("RemedyKind3", "takenFor", "SymptomKind2").unwrap()]);
        assert!(t.render_concrete(v, &p).contains("to relieve SymptomKind2"));
    }

    #[test]
    fn specialization_lists_options() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let t = QuestionTemplates::travel_defaults(v);
        let base = PatternSet::from_facts([v.fact("Sport", "doAt", "Central Park").unwrap()]);
        let options = vec![
            PatternSet::from_facts([v.fact("Biking", "doAt", "Central Park").unwrap()]),
            PatternSet::from_facts([v.fact("Ball Game", "doAt", "Central Park").unwrap()]),
        ];
        let s = t.render_specialization(v, &base, &options);
        assert!(s.contains("more specific"));
        assert!(s.contains("biking in Central Park"));
        assert!(s.contains("ball game in Central Park"));
    }
}
