//! Partial-answer manifests and the engine-side retry loop of the crowd
//! access policy.
//!
//! When a question times out ([`Answer::NoResponse`]) the engines retry it
//! under the run's [`CrowdPolicy`] with deterministic exponential backoff;
//! once retries are exhausted they *give up on the question*, leave the
//! pattern [`Unknown`](crate::Class::Unknown), and record it here. A run
//! that hit faults therefore terminates normally with
//! `complete == false` and a manifest listing exactly which patterns went
//! unanswered — it never panics and never silently claims completeness.

use crate::assignment::Assignment;
use crowd::{Answer, CrowdPolicy, CrowdSource, MemberId, Question};

/// What a mining run could *not* find out, and how hard it tried.
///
/// Empty (the default) on every fault-free run, so adding it to
/// [`MiningOutcome`](crate::MiningOutcome) changes no existing digest.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PartialManifest {
    /// Asks that timed out (including ones later answered on retry).
    pub timeouts: usize,
    /// Re-asks issued by the retry policy.
    pub retries: usize,
    /// Patterns the run gave up on that ended the run still unclassified
    /// (deduplicated, in first-give-up order). Patterns abandoned by one
    /// member but later classified through another member or by inference
    /// are *not* listed — they are answered, just not by the member that
    /// stalled.
    pub unanswered: Vec<Assignment>,
}

impl PartialManifest {
    /// Whether the run experienced no degradation at all.
    pub fn is_empty(&self) -> bool {
        self.timeouts == 0 && self.retries == 0 && self.unanswered.is_empty()
    }
}

/// Asks `question`, retrying timeouts under `policy`: each `NoResponse`
/// increments `timeouts`; before each retry the backoff is signalled to
/// the source via [`CrowdSource::advance_clock`] and `retries` is
/// incremented. Returns the first non-timeout answer, or
/// [`Answer::NoResponse`] once the retry budget is spent (the caller then
/// records the give-up).
///
/// Every ask is wrapped in a telemetry span named `"question"` whose
/// detail is the question kind; timeouts and retries additionally emit
/// `"timeout"` / `"retry"` marks plus `crowd.*` counters, so a recorded
/// trace can be replayed against the run's [`PartialManifest`].
pub(crate) fn ask_with_retry<C: CrowdSource>(
    crowd: &mut C,
    member: MemberId,
    question: &Question,
    policy: &CrowdPolicy,
    timeouts: &mut usize,
    retries: &mut usize,
    tele: &telemetry::Telemetry,
) -> Answer {
    let kind = match question {
        Question::Concrete { .. } => "concrete",
        Question::Specialization { .. } => "specialization",
    };
    let span = tele.span_with("question", kind);
    let tele = span.tele();
    let mut attempt = 0u32;
    loop {
        let answer = crowd.ask(member, question);
        if !matches!(answer, Answer::NoResponse) {
            tele.observe("crowd.attempts_per_question", u64::from(attempt) + 1);
            return answer;
        }
        *timeouts += 1;
        tele.mark("timeout", kind);
        tele.count("crowd.timeouts", 1);
        if attempt >= policy.max_retries {
            tele.count("crowd.gave_up", 1);
            tele.observe("crowd.attempts_per_question", u64::from(attempt) + 1);
            return Answer::NoResponse;
        }
        let backoff = policy.backoff(attempt);
        crowd.advance_clock(backoff);
        tele.mark("retry", kind);
        tele.count("crowd.retries", 1);
        tele.count("crowd.backoff_ticks", backoff);
        *retries += 1;
        attempt += 1;
    }
}
