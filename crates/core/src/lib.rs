//! # oassis-core — the OASSIS crowd-mining engine (Sections 4–6)
//!
//! The paper's primary contribution: evaluating OASSIS-QL queries with the
//! crowd while asking as few questions as possible.
//!
//! * [`assignment`] — assignments with multiplicities and their semantic
//!   partial order (Definition 4.1).
//! * [`validity`] — membership in the expanded assignment set `𝒜`
//!   (line 1 of Algorithm 1) and in `𝒜_valid` (Proposition 5.1).
//! * [`dag`] — the lazily generated assignment DAG (Section 5, the
//!   prototype's `AssignGenerator`).
//! * [`classify`] — witness-based classification with the inference of
//!   Observation 4.4, plus user-guided pruning.
//! * [`vertical`] — Algorithm 1 (single user).
//! * [`multi`] — the multi-user engine of Section 4.2 (`QueueManager`).
//! * [`oplog`] — the answer-operation log: every accepted answer as a
//!   replayable delta, permutation-invariant under the canonical merge
//!   order.
//! * [`aggregate`] — black-box answer aggregation.
//! * [`baselines`] — the Horizontal (Apriori-style) and Naive comparison
//!   algorithms of Section 6.4, and the exhaustive-baseline question count.
//! * [`cache`] — `CrowdCache`: answer caching and threshold re-use
//!   (Section 6.3).
//! * [`cluster`] — sharded deployment: member partitions, wire ops and
//!   the coordinator merge (with `crates/simtest`'s simulated network).
//! * [`synth`] — synthetic DAGs, planted MSPs and ground-truth oracles
//!   (Section 6.4).
//! * [`templates`] — natural-language question rendering (Section 6.2).
//! * [`rulemine`] — association-rule mining (`IMPLYING … AND CONFIDENCE`,
//!   a Section-8 / language-guide extension).
//! * [`diversify`] — diversified top-k answers (Section 8 extension).
//! * [`manifest`] — the crowd-access policy's retry loop and the
//!   partial-answer manifest of degraded runs.
//! * [`invariants`] — step-level invariant checkers for the simulation
//!   harness (`crates/simtest`).
//! * [`engine`] — the high-level `Oassis` facade.
#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod assignment;
pub mod baselines;
pub mod cache;
pub mod classify;
pub mod cluster;
pub mod dag;
pub mod diversify;
pub mod engine;
pub mod fingerprint;
pub mod invariants;
pub mod manifest;
pub mod multi;
pub mod oplog;
pub mod rulemine;
pub mod synth;
pub mod templates;
pub mod validity;
pub mod vertical;

pub use aggregate::{
    AggVerdict, Aggregator, EarlyDecisionAggregator, FixedSampleAggregator, TrustWeightedAggregator,
};
pub use assignment::{Assignment, Slot};
pub use baselines::{baseline_question_count, run_horizontal, run_naive};
pub use cache::{CachedAnswer, CachingCrowd, CrowdCache, SharedCachingCrowd, SharedCrowdCache};
pub use classify::{Class, Classifier};
pub use cluster::{
    assignment_from_json, assignment_to_json, intern_wire_op, op_to_wire, to_wire, wire_from_json,
    wire_to_json, Coordinator, SemanticOutcome, ShardCrowd, ShardMap, WireOp, WireVerdict,
};
pub use dag::{Dag, GenStats, Node, NodeId};
pub use diversify::{diversify, semantic_distance};
pub use engine::{
    CrowdBinding, ExecuteOptions, Oassis, OassisError, QueryAnswer, QueryOutcome, QueryRequest,
    RuleAnswer,
};
pub use manifest::PartialManifest;
pub use multi::{run_multi, MultiOutcome, QuestionStats};
pub use oplog::{AnswerOp, OpLog, OpTap, OpTapHandle, OpVerdict, ReplayOutcome, Watermark};
pub use rulemine::{run_rules, MinedRule, RuleMiningConfig, RuleOutcome};
pub use synth::{plant_msps, synthetic_domain, MspDistribution, PlantedOracle, SyntheticDomain};
pub use templates::QuestionTemplates;
pub use validity::{SlotInfo, ValidityIndex};
pub use vertical::{run_vertical, DiscoveryEvent, DiscoveryKind, MiningConfig, MiningOutcome};
