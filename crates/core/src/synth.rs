//! Synthetic workloads (Section 6.4): controlled assignment DAGs, planted
//! MSPs and a ground-truth crowd oracle.
//!
//! The paper's synthetic experiments "used a DAG similar to the one
//! generated in our crowd experiments with the travel query, but varied its
//! width … and its depth", planted MSPs at controlled densities and
//! distributions, and simulated a single user answering from the planted
//! ground truth. We reproduce that with a two-taxonomy domain whose product
//! DAG has the requested width/depth, [`plant_msps`] for the three
//! placement distributions, and [`PlantedOracle`] implementing
//! [`CrowdSource`] from the planted truth.

// audit: allow-file(D4, synthetic-instance generator; every index it uses it also generated in-range)
use crate::assignment::{value_leq, Slot};
use crate::dag::{Dag, NodeId};
use crowd::{Answer, CrowdSource, MemberId, Question};
use oassis_ql::Value;
use ontology::{Ontology, OntologyBuilder, PatternSet, Vocabulary};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::{HashMap, HashSet, VecDeque};

/// A synthetic two-taxonomy domain and its mining query.
#[derive(Debug)]
pub struct SyntheticDomain {
    /// The generated ontology (taxonomies `X*` and `Y*`).
    pub ontology: Ontology,
    /// OASSIS-QL source: mine `$x rel $y` over the two taxonomies.
    pub query: String,
    /// X-taxonomy layer widths used.
    pub layers_x: Vec<usize>,
    /// Y-taxonomy layer widths used.
    pub layers_y: Vec<usize>,
}

/// Builds a layered tree: `layers[0]` must be 1 (the root); each node of
/// layer `i` gets a parent in layer `i-1`, round-robin. Returns per-layer
/// node names.
fn layered_tree(
    b: &mut OntologyBuilder,
    root: &str,
    prefix: &str,
    layers: &[usize],
) -> Vec<Vec<String>> {
    assert_eq!(layers[0], 1, "layer 0 is the root");
    let mut out: Vec<Vec<String>> = vec![vec![root.to_owned()]];
    for (li, &n) in layers.iter().enumerate().skip(1) {
        let prev = out[li - 1].clone();
        let mut layer = Vec::with_capacity(n);
        for i in 0..n {
            let name = format!("{prefix}{li}_{i}");
            b.subclass(&name, &prev[i % prev.len()]);
            layer.push(name);
        }
        out.push(layer);
    }
    out
}

/// [`synthetic_domain`] with a `$x+` multiplicity on the first variable,
/// for the multiplicity experiments of Section 6.4.
pub fn synthetic_domain_mult(width: usize, depth: usize, seed: u64) -> SyntheticDomain {
    let mut d = synthetic_domain(width, depth, seed);
    d.query = d.query.replace("$x rel $y", "$x+ rel $y");
    d
}

/// Builds a synthetic domain whose **product** assignment DAG (one `x`
/// value × one `y` value) has depth `depth` (edges on the longest
/// root-to-leaf path) and maximal antichain (width) close to `width`.
pub fn synthetic_domain(width: usize, depth: usize, seed: u64) -> SyntheticDomain {
    assert!(depth >= 2, "need at least one level per taxonomy");
    let dx = depth / 2;
    let dy = depth - dx;
    // geometric layer growth g chosen so the product's widest layer ≈ width
    let mut g = 1.5f64;
    let mut best = (f64::MAX, 2.0f64);
    while g < 40.0 {
        let (lx, ly) = (geo_layers(dx, g), geo_layers(dy, g));
        let w = product_width(&lx, &ly);
        let err = (w as f64 - width as f64).abs();
        if err < best.0 {
            best = (err, g);
        }
        g *= 1.05;
    }
    let g = best.1;
    let layers_x = geo_layers(dx, g);
    let layers_y = geo_layers(dy, g);

    let mut b = OntologyBuilder::new();
    b.relation("rel");
    // tiny deterministic shuffle of nothing — the structure itself is
    // deterministic; `seed` is kept for future shape jitter.
    let _ = seed;
    layered_tree(&mut b, "X", "X", &layers_x);
    layered_tree(&mut b, "Y", "Y", &layers_y);
    let query = "SELECT FACT-SETS\nWHERE\n  $x subClassOf* X.\n  $y subClassOf* Y\nSATISFYING\n  $x rel $y\nWITH SUPPORT = 0.5\n"
        .to_owned();
    SyntheticDomain {
        ontology: b.build().expect("acyclic"),
        query,
        layers_x,
        layers_y,
    }
}

/// Builds a stress-scale synthetic domain whose product assignment DAG
/// has close to `assignments` **total** assignments (Σ|X| × Σ|Y| — every
/// x-taxonomy node paired with every y-taxonomy node), as opposed to
/// [`synthetic_domain`], which targets the widest *antichain*. With
/// `assignments = 1_000_000` this yields the 10⁶-node ontology used by
/// the arena-layout stress benchmarks; mining stays lazy, so only the
/// cone around the planted MSPs is ever materialized.
pub fn stress_domain(assignments: usize, depth: usize) -> SyntheticDomain {
    assert!(depth >= 2, "need at least one level per taxonomy");
    let dx = depth / 2;
    let dy = depth - dx;
    // geometric layer growth g chosen so Σ|X| × Σ|Y| ≈ assignments
    let mut g = 1.5f64;
    let mut best = (f64::MAX, 2.0f64);
    while g < 60.0 {
        let (lx, ly) = (geo_layers(dx, g), geo_layers(dy, g));
        let total = lx.iter().sum::<usize>() * ly.iter().sum::<usize>();
        let err = (total as f64 - assignments as f64).abs();
        if err < best.0 {
            best = (err, g);
        }
        g *= 1.02;
    }
    let g = best.1;
    let layers_x = geo_layers(dx, g);
    let layers_y = geo_layers(dy, g);

    let mut b = OntologyBuilder::new();
    b.relation("rel");
    layered_tree(&mut b, "X", "X", &layers_x);
    layered_tree(&mut b, "Y", "Y", &layers_y);
    let query = "SELECT FACT-SETS\nWHERE\n  $x subClassOf* X.\n  $y subClassOf* Y\nSATISFYING\n  $x rel $y\nWITH SUPPORT = 0.5\n"
        .to_owned();
    SyntheticDomain {
        ontology: b.build().expect("acyclic"),
        query,
        layers_x,
        layers_y,
    }
}

fn geo_layers(depth: usize, g: f64) -> Vec<usize> {
    (0..=depth)
        .map(|i| (g.powi(i as i32)).round().max(1.0) as usize)
        .collect()
}

/// Width of the product DAG: max over diagonal sums of layer products.
fn product_width(lx: &[usize], ly: &[usize]) -> usize {
    let mut best = 0;
    for k in 0..(lx.len() + ly.len() - 1) {
        let mut w = 0;
        for (i, &a) in lx.iter().enumerate() {
            if k >= i && k - i < ly.len() {
                w += a * ly[k - i];
            }
        }
        best = best.max(w);
    }
    best
}

/// MSP placement distribution (Section 6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MspDistribution {
    /// Uniformly random over candidate nodes.
    Uniform,
    /// Biased towards MSPs close to each other in the DAG (the paper used
    /// "separated by at most 4 nodes").
    Nearby(usize),
    /// Biased towards MSPs far apart ("separated by at least 6 nodes").
    Far(usize),
}

/// Plants `count` pairwise-incomparable MSPs in a fully materialized DAG.
/// `among_valid` restricts candidates to valid assignments. Returns the
/// chosen node ids (an antichain).
pub fn plant_msps(
    dag: &mut Dag<'_>,
    count: usize,
    among_valid: bool,
    dist: MspDistribution,
    seed: u64,
) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut candidates: Vec<NodeId> = dag
        .node_ids()
        .filter(|&i| !among_valid || dag.node(i).valid)
        .collect();
    candidates.shuffle(&mut rng);
    let hops = match dist {
        MspDistribution::Uniform => None,
        MspDistribution::Nearby(h) | MspDistribution::Far(h) => Some(h),
    };
    let mut chosen: Vec<NodeId> = Vec::new();
    let mut relaxed: Vec<NodeId> = Vec::new(); // antichain-only fallbacks
    for &c in &candidates {
        if chosen.len() >= count {
            break;
        }
        if chosen.iter().any(|&m| dag.leq(m, c) || dag.leq(c, m)) {
            continue;
        }
        let dist_ok = match (dist, hops) {
            (MspDistribution::Uniform, _) => true,
            (MspDistribution::Nearby(h), _) => {
                chosen.is_empty() || min_hops(dag, c, &chosen).is_some_and(|d| d <= h)
            }
            (MspDistribution::Far(h), _) => {
                chosen.is_empty() || min_hops(dag, c, &chosen).is_none_or(|d| d >= h)
            }
        };
        if dist_ok {
            chosen.push(c);
        } else {
            relaxed.push(c);
        }
    }
    // top up from antichain-compatible leftovers if the distance bias ran
    // out of candidates
    for c in relaxed {
        if chosen.len() >= count {
            break;
        }
        if !chosen.iter().any(|&m| dag.leq(m, c) || dag.leq(c, m)) {
            chosen.push(c);
        }
    }
    chosen
}

/// Undirected hop distance from `from` to the nearest of `targets` in the
/// materialized DAG (`None` if unreachable).
fn min_hops(dag: &Dag<'_>, from: NodeId, targets: &[NodeId]) -> Option<usize> {
    let targets: HashSet<NodeId> = targets.iter().copied().collect();
    let mut seen: HashSet<NodeId> = HashSet::from([from]);
    let mut queue: VecDeque<(NodeId, usize)> = VecDeque::from([(from, 0)]);
    while let Some((id, d)) = queue.pop_front() {
        if targets.contains(&id) {
            return Some(d);
        }
        let neighbours: Vec<NodeId> = dag
            .children_if_generated(id)
            .unwrap_or(&[])
            .iter()
            .copied()
            .chain(dag.parents(id))
            .collect();
        for n in neighbours {
            if seen.insert(n) {
                queue.push_back((n, d + 1));
            }
        }
    }
    None
}

/// Plants additional MSPs *with multiplicities*: takes planted base nodes
/// and widens one slot to `size` values drawn from incomparable universe
/// values (for the multiplicities experiment of Section 6.4). Returns the
/// new node ids; the originals should be removed from the planted set by
/// the caller (they are now below the widened MSPs).
pub fn widen_msps(
    dag: &mut Dag<'_>,
    planted: &[NodeId],
    how_many: usize,
    size: usize,
    slot: Slot,
    seed: u64,
) -> Vec<(NodeId, NodeId)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let vocab = dag.vocab();
    let universe: Vec<Value> = dag.validity().universe(slot).to_vec();
    let mut out = Vec::new();
    let mut pool: Vec<NodeId> = planted.to_vec();
    pool.shuffle(&mut rng);
    for &id in pool.iter().take(how_many) {
        let mut a = dag.node(id).assignment.clone();
        let mut tries = 0;
        while a.slot(slot).len() < size && tries < 50 {
            tries += 1;
            let v = universe[rng.gen_range(0..universe.len())];
            let incomparable = a
                .slot(slot)
                .iter()
                .all(|&w| !value_leq(vocab, v, w) && !value_leq(vocab, w, v));
            if !incomparable {
                continue;
            }
            let widened = a.with_value(vocab, slot, v);
            if dag.validity().admits(vocab, &widened) {
                a = widened;
            }
        }
        if a.slot(slot).len() >= 2 {
            let nid = dag.intern(a);
            out.push((id, nid));
        }
    }
    out
}

/// A crowd oracle answering from planted ground truth: a pattern is
/// significant iff it is ≤ some planted MSP pattern. Support is reported
/// as 1.0 / 0.0, so any threshold in `(0, 1]` separates the classes.
pub struct PlantedOracle<'a> {
    vocab: &'a Vocabulary,
    planted: Vec<PatternSet>,
    /// Probability of answering an insignificant concrete question with a
    /// user-guided pruning click (when a genuinely irrelevant element
    /// occurs in it).
    pub pruning_prob: f64,
    members: usize,
    rng: StdRng,
    questions: usize,
}

impl<'a> PlantedOracle<'a> {
    /// Creates an oracle for `members` identical simulated users.
    pub fn new(vocab: &'a Vocabulary, planted: Vec<PatternSet>, members: usize, seed: u64) -> Self {
        PlantedOracle {
            vocab,
            planted,
            pruning_prob: 0.0,
            members,
            rng: StdRng::seed_from_u64(seed),
            questions: 0,
        }
    }

    /// Builds the planted pattern list from DAG nodes.
    pub fn from_nodes(dag: &Dag<'a>, nodes: &[NodeId], members: usize, seed: u64) -> Self {
        let planted = nodes
            .iter()
            .map(|&id| dag.node(id).assignment.apply(dag.query()))
            .collect();
        Self::new(dag.vocab(), planted, members, seed)
    }

    /// Ground truth: is `pattern` significant?
    pub fn is_significant(&self, pattern: &PatternSet) -> bool {
        self.planted.iter().any(|s| pattern.leq(self.vocab, s))
    }

    /// An element of `pattern` that appears (specialized) in no planted
    /// MSP — a truthful pruning target.
    fn irrelevant_element(&self, pattern: &PatternSet) -> Option<ontology::ElemId> {
        let relevant = |e: ontology::ElemId| {
            self.planted.iter().any(|s| {
                s.iter().any(|p| {
                    p.subject.is_some_and(|x| self.vocab.elem_leq(e, x))
                        || p.object.is_some_and(|x| self.vocab.elem_leq(e, x))
                })
            })
        };
        pattern
            .iter()
            .flat_map(|p| [p.subject, p.object])
            .flatten()
            .find(|&e| !relevant(e))
    }
}

impl CrowdSource for PlantedOracle<'_> {
    fn members(&self) -> Vec<MemberId> {
        (0..self.members as u32).map(MemberId).collect()
    }

    fn ask(&mut self, _member: MemberId, question: &Question) -> Answer {
        self.questions += 1;
        match question {
            Question::Concrete { pattern } => {
                if self.is_significant(pattern) {
                    Answer::Support {
                        support: 1.0,
                        more_tip: None,
                    }
                } else {
                    if self.pruning_prob > 0.0 && self.rng.gen_bool(self.pruning_prob) {
                        if let Some(e) = self.irrelevant_element(pattern) {
                            return Answer::Irrelevant { elem: e };
                        }
                    }
                    Answer::Support {
                        support: 0.0,
                        more_tip: None,
                    }
                }
            }
            Question::Specialization { options, .. } => {
                match options.iter().position(|o| self.is_significant(o)) {
                    Some(choice) => Answer::Specialized {
                        choice,
                        support: 1.0,
                    },
                    None => Answer::NoneOfThese,
                }
            }
        }
    }

    fn questions_asked(&self) -> usize {
        self.questions
    }
}

/// Ground-truth helper for tests and experiment validation: classify every
/// materialized node of a DAG against the planted set.
pub fn ground_truth_classes(dag: &Dag<'_>, oracle: &PlantedOracle<'_>) -> HashMap<NodeId, bool> {
    dag.node_ids()
        .map(|id| {
            let p = dag.node(id).assignment.apply(dag.query());
            (id, oracle.is_significant(&p))
        })
        .collect()
}

/// The true MSP set of a fully materialized DAG under planted truth:
/// significant nodes none of whose materialized children are significant.
pub fn true_msps(dag: &mut Dag<'_>, oracle: &PlantedOracle<'_>) -> Vec<NodeId> {
    dag.materialize_all();
    let classes = ground_truth_classes(dag, oracle);
    dag.node_ids()
        .filter(|&id| {
            classes[&id]
                && dag
                    .children_if_generated(id)
                    .unwrap_or(&[])
                    .iter()
                    .all(|c| !classes[c])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use oassis_ql::{bind, evaluate_where, parse, MatchMode};

    fn build(width: usize, depth: usize) -> (SyntheticDomain, oassis_ql::Query) {
        let d = synthetic_domain(width, depth, 0);
        let q = parse(&d.query).unwrap();
        (d, q)
    }

    #[test]
    fn domain_hits_width_and_depth_targets() {
        let (d, _) = build(500, 7);
        let total_depth = (d.layers_x.len() - 1) + (d.layers_y.len() - 1);
        assert_eq!(total_depth, 7);
        let w = product_width(&d.layers_x, &d.layers_y);
        assert!((400..=650).contains(&w), "width {w}");
    }

    #[test]
    fn dag_materializes_with_expected_depth() {
        let (d, q) = build(100, 5);
        let b = bind(&q, &d.ontology).unwrap();
        let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
        let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        let n = dag.materialize_all();
        // total nodes = (Σ x-layers) × (Σ y-layers)
        let expect: usize = d.layers_x.iter().sum::<usize>() * d.layers_y.iter().sum::<usize>();
        assert_eq!(n, expect);
    }

    #[test]
    fn planted_msps_are_an_antichain() {
        let (d, q) = build(100, 5);
        let b = bind(&q, &d.ontology).unwrap();
        let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
        let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        dag.materialize_all();
        let planted = plant_msps(&mut dag, 12, true, MspDistribution::Uniform, 3);
        assert_eq!(planted.len(), 12);
        for (i, &a) in planted.iter().enumerate() {
            for &b2 in &planted[i + 1..] {
                assert!(!dag.leq(a, b2) && !dag.leq(b2, a));
            }
        }
    }

    #[test]
    fn nearby_and_far_distributions_respect_hops() {
        let (d, q) = build(150, 6);
        let b = bind(&q, &d.ontology).unwrap();
        let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
        let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        dag.materialize_all();
        let near = plant_msps(&mut dag, 8, true, MspDistribution::Nearby(4), 5);
        assert!(near.len() >= 4);
        let far = plant_msps(&mut dag, 8, true, MspDistribution::Far(6), 5);
        assert!(far.len() >= 4);
        assert_ne!(near, far);
    }

    #[test]
    fn oracle_significance_is_downward_closed() {
        let (d, q) = build(80, 4);
        let b = bind(&q, &d.ontology).unwrap();
        let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
        let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        dag.materialize_all();
        let planted = plant_msps(&mut dag, 5, true, MspDistribution::Uniform, 1);
        let oracle = PlantedOracle::from_nodes(&dag, &planted, 1, 0);
        let classes = ground_truth_classes(&dag, &oracle);
        for id in dag.node_ids() {
            if classes[&id] {
                // every materialized parent is significant too
                for p in dag.parents(id) {
                    assert!(classes[&p], "monotonicity violated");
                }
            }
        }
        // planted nodes are significant
        for &m in &planted {
            assert!(classes[&m]);
        }
    }

    #[test]
    fn true_msps_match_planted_for_valid_planting() {
        let (d, q) = build(60, 4);
        let b = bind(&q, &d.ontology).unwrap();
        let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
        let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        dag.materialize_all();
        let planted = plant_msps(&mut dag, 6, false, MspDistribution::Uniform, 9);
        let oracle = PlantedOracle::from_nodes(&dag, &planted, 1, 0);
        let mut msps = true_msps(&mut dag, &oracle);
        msps.sort_unstable();
        let mut expected = planted.clone();
        expected.sort_unstable();
        assert_eq!(msps, expected);
    }

    #[test]
    fn oracle_pruning_click_is_truthful() {
        let (d, q) = build(60, 4);
        let b = bind(&q, &d.ontology).unwrap();
        let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
        let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
        dag.materialize_all();
        let planted = plant_msps(&mut dag, 3, false, MspDistribution::Uniform, 2);
        let mut oracle = PlantedOracle::from_nodes(&dag, &planted, 1, 0);
        oracle.pruning_prob = 1.0;
        // find an insignificant node
        let classes = ground_truth_classes(&dag, &oracle);
        let insig = dag.node_ids().find(|i| !classes[i]).unwrap();
        let pattern = dag.node(insig).assignment.apply(dag.query());
        match oracle.ask(
            MemberId(0),
            &Question::Concrete {
                pattern: pattern.clone(),
            },
        ) {
            Answer::Irrelevant { elem } => {
                // no planted pattern may contain a specialization of elem
                for s in &oracle.planted {
                    for p in s.iter() {
                        assert!(!p
                            .subject
                            .is_some_and(|x| d.ontology.vocab().elem_leq(elem, x)));
                        assert!(!p
                            .object
                            .is_some_and(|x| d.ontology.vocab().elem_leq(elem, x)));
                    }
                }
            }
            Answer::Support { support, .. } => assert_eq!(support, 0.0),
            other => panic!("{other:?}"),
        }
    }
}
