//! The vocabulary `(E, ≤E, R, ≤R)` of Definition 2.1 and the derived fact
//! order of Definition 2.5.

use crate::bitmat::BitMatrix;
use crate::error::OntologyError;
use crate::fact::Fact;
use crate::ids::{ElemId, RelId};
use std::collections::HashMap;

/// Builder for a [`Vocabulary`].
///
/// Names are interned on first use. Order edges are added in the paper's
/// orientation: the **general** term is ≤ the **specific** term
/// (`Sport ≤E Biking`). Call [`freeze`](Self::freeze) to validate acyclicity
/// and precompute reachability.
///
/// ```
/// use ontology::VocabularyBuilder;
/// let mut b = VocabularyBuilder::new();
/// b.elem_specializes("Sport", "Biking");
/// b.elem_specializes("Activity", "Sport");
/// let v = b.freeze().unwrap();
/// let (sport, biking) = (v.elem_id("Sport").unwrap(), v.elem_id("Biking").unwrap());
/// let activity = v.elem_id("Activity").unwrap();
/// assert!(v.elem_leq(sport, biking));
/// assert!(v.elem_leq(activity, biking)); // transitive
/// assert!(!v.elem_leq(biking, sport));
/// ```
#[derive(Debug, Default, Clone)]
pub struct VocabularyBuilder {
    elem_names: Vec<String>,
    elem_index: HashMap<String, ElemId>,
    rel_names: Vec<String>,
    rel_index: HashMap<String, RelId>,
    /// Immediate specialization edges `(general, specific)` over elements.
    elem_edges: Vec<(ElemId, ElemId)>,
    rel_edges: Vec<(RelId, RelId)>,
}

impl VocabularyBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns an element name, returning its id.
    pub fn element(&mut self, name: &str) -> ElemId {
        if let Some(&id) = self.elem_index.get(name) {
            return id;
        }
        let id = ElemId(self.elem_names.len() as u32);
        self.elem_names.push(name.to_owned());
        self.elem_index.insert(name.to_owned(), id);
        id
    }

    /// Interns a relation name, returning its id.
    pub fn relation(&mut self, name: &str) -> RelId {
        if let Some(&id) = self.rel_index.get(name) {
            return id;
        }
        let id = RelId(self.rel_names.len() as u32);
        self.rel_names.push(name.to_owned());
        self.rel_index.insert(name.to_owned(), id);
        id
    }

    /// Declares `general ≤E specific` (an immediate specialization edge),
    /// interning both names.
    pub fn elem_specializes(&mut self, general: &str, specific: &str) {
        let g = self.element(general);
        let s = self.element(specific);
        self.elem_edge(g, s);
    }

    /// Declares `general ≤R specific` over relations, interning both names.
    pub fn rel_specializes(&mut self, general: &str, specific: &str) {
        let g = self.relation(general);
        let s = self.relation(specific);
        self.rel_edge(g, s);
    }

    /// Id-based form of [`elem_specializes`](Self::elem_specializes).
    /// A self-edge is a no-op (the order is reflexive anyway).
    pub fn elem_edge(&mut self, general: ElemId, specific: ElemId) {
        if general != specific {
            self.elem_edges.push((general, specific));
        }
    }

    /// Id-based form of [`rel_specializes`](Self::rel_specializes).
    pub fn rel_edge(&mut self, general: RelId, specific: RelId) {
        if general != specific {
            self.rel_edges.push((general, specific));
        }
    }

    /// Number of interned elements so far.
    pub fn num_elems(&self) -> usize {
        self.elem_names.len()
    }

    /// Number of interned relations so far.
    pub fn num_rels(&self) -> usize {
        self.rel_names.len()
    }

    /// Validates acyclicity of both orders and computes reachability.
    pub fn freeze(self) -> Result<Vocabulary, OntologyError> {
        let (elem_children, elem_parents, elem_desc) =
            close(self.elem_names.len(), &self.elem_edges, |i| {
                OntologyError::ElementCycle {
                    on: self.elem_names[i].clone(),
                }
            })?;
        let (rel_children, rel_parents, rel_desc) = close(
            self.rel_names.len(),
            &self
                .rel_edges
                .iter()
                .map(|&(g, s)| (ElemId(g.0), ElemId(s.0)))
                .collect::<Vec<_>>(),
            |i| OntologyError::RelationCycle {
                on: self.rel_names[i].clone(),
            },
        )?;
        let elem_anc = elem_desc.transposed();
        let rel_anc = rel_desc.transposed();
        Ok(Vocabulary {
            elem_names: self.elem_names,
            elem_index: self.elem_index,
            rel_names: self.rel_names,
            rel_index: self.rel_index,
            elem_children,
            elem_parents,
            elem_desc,
            elem_anc,
            rel_children: rel_children
                .into_iter()
                .map(|v| v.into_iter().map(|e| RelId(e.0)).collect())
                .collect(),
            rel_parents: rel_parents
                .into_iter()
                .map(|v| v.into_iter().map(|e| RelId(e.0)).collect())
                .collect(),
            rel_desc,
            rel_anc,
        })
    }
}

/// Deduplicates edges, topologically sorts the DAG and computes the
/// reflexive–transitive closure. Returns `(children, parents, closure)`.
#[allow(clippy::type_complexity)]
fn close(
    n: usize,
    edges: &[(ElemId, ElemId)],
    mk_err: impl Fn(usize) -> OntologyError,
) -> Result<(Vec<Vec<ElemId>>, Vec<Vec<ElemId>>, BitMatrix), OntologyError> {
    let mut children: Vec<Vec<ElemId>> = vec![Vec::new(); n];
    let mut parents: Vec<Vec<ElemId>> = vec![Vec::new(); n];
    {
        let mut dedup: Vec<(ElemId, ElemId)> = edges.to_vec();
        dedup.sort_unstable();
        dedup.dedup();
        for (g, s) in dedup {
            children[g.index()].push(s);
            parents[s.index()].push(g);
        }
    }
    // Kahn's algorithm over specialization edges (general → specific).
    let mut indeg: Vec<usize> = parents.iter().map(Vec::len).collect();
    let mut queue: Vec<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut topo: Vec<usize> = Vec::with_capacity(n);
    while let Some(i) = queue.pop() {
        topo.push(i);
        for &c in &children[i] {
            indeg[c.index()] -= 1;
            if indeg[c.index()] == 0 {
                queue.push(c.index());
            }
        }
    }
    if topo.len() != n {
        let on = (0..n)
            .find(|&i| indeg[i] > 0)
            .expect("cycle implies leftover node");
        return Err(mk_err(on));
    }
    // Closure: process in reverse topological order so every child's row is
    // complete before it is folded into its parents.
    let mut closure = BitMatrix::new(n);
    for &i in topo.iter().rev() {
        closure.set(i, i);
        // `children[i]` appear later in `topo`, hence already processed.
        let kids: Vec<usize> = children[i].iter().map(|c| c.index()).collect();
        for c in kids {
            closure.or_row_into(c, i);
        }
    }
    Ok((children, parents, closure))
}

/// A frozen vocabulary: interned names plus the two partial orders with
/// precomputed reachability (Definition 2.1).
#[derive(Debug, Clone)]
pub struct Vocabulary {
    elem_names: Vec<String>,
    elem_index: HashMap<String, ElemId>,
    rel_names: Vec<String>,
    rel_index: HashMap<String, RelId>,
    elem_children: Vec<Vec<ElemId>>,
    elem_parents: Vec<Vec<ElemId>>,
    elem_desc: BitMatrix,
    /// Transpose of `elem_desc`: row `e` is the up-set `{x : x ≤E e}`.
    elem_anc: BitMatrix,
    rel_children: Vec<Vec<RelId>>,
    rel_parents: Vec<Vec<RelId>>,
    rel_desc: BitMatrix,
    /// Transpose of `rel_desc`: row `r` is the up-set `{x : x ≤R r}`.
    rel_anc: BitMatrix,
}

impl Vocabulary {
    /// Looks up an element by name.
    pub fn elem_id(&self, name: &str) -> Option<ElemId> {
        self.elem_index.get(name).copied()
    }

    /// Looks up a relation by name.
    pub fn rel_id(&self, name: &str) -> Option<RelId> {
        self.rel_index.get(name).copied()
    }

    /// The interned name of an element.
    pub fn elem_name(&self, id: ElemId) -> &str {
        &self.elem_names[id.index()]
    }

    /// The interned name of a relation.
    pub fn rel_name(&self, id: RelId) -> &str {
        &self.rel_names[id.index()]
    }

    /// Number of elements `|E|`.
    pub fn num_elems(&self) -> usize {
        self.elem_names.len()
    }

    /// Number of relations `|R|`.
    pub fn num_rels(&self) -> usize {
        self.rel_names.len()
    }

    /// All element ids.
    pub fn elems(&self) -> impl Iterator<Item = ElemId> {
        (0..self.num_elems() as u32).map(ElemId)
    }

    /// All relation ids.
    pub fn rels(&self) -> impl Iterator<Item = RelId> {
        (0..self.num_rels() as u32).map(RelId)
    }

    /// `a ≤E b`: `a` equals `b` or is a (transitive) generalization of `b`.
    #[inline]
    pub fn elem_leq(&self, a: ElemId, b: ElemId) -> bool {
        self.elem_desc.get(a.index(), b.index())
    }

    /// `a ≤R b` over relations.
    #[inline]
    pub fn rel_leq(&self, a: RelId, b: RelId) -> bool {
        self.rel_desc.get(a.index(), b.index())
    }

    /// Immediate specializations of `a` (its children in the ≤E DAG).
    pub fn elem_children(&self, a: ElemId) -> &[ElemId] {
        &self.elem_children[a.index()]
    }

    /// Immediate generalizations of `a` (its parents in the ≤E DAG).
    pub fn elem_parents(&self, a: ElemId) -> &[ElemId] {
        &self.elem_parents[a.index()]
    }

    /// Immediate specializations of relation `r`.
    pub fn rel_children(&self, r: RelId) -> &[RelId] {
        &self.rel_children[r.index()]
    }

    /// Immediate generalizations of relation `r`.
    pub fn rel_parents(&self, r: RelId) -> &[RelId] {
        &self.rel_parents[r.index()]
    }

    /// All `b` with `a ≤E b` (reflexive–transitive specializations of `a`),
    /// in id order.
    pub fn elem_descendants(&self, a: ElemId) -> impl Iterator<Item = ElemId> + '_ {
        self.elem_desc.row_iter(a.index()).map(|i| ElemId(i as u32))
    }

    /// All `s` with `r ≤R s`, in id order.
    pub fn rel_descendants(&self, r: RelId) -> impl Iterator<Item = RelId> + '_ {
        self.rel_desc.row_iter(r.index()).map(|i| RelId(i as u32))
    }

    /// Number of descendants of `a` (including `a`).
    pub fn elem_descendant_count(&self, a: ElemId) -> usize {
        self.elem_desc.row_count(a.index())
    }

    /// Number of descendants of `r` (including `r`).
    pub fn rel_descendant_count(&self, r: RelId) -> usize {
        self.rel_desc.row_count(r.index())
    }

    /// All `b` with `b ≤E a` (the reflexive–transitive *generalizations*
    /// of `a` — its up-set), in id order.
    pub fn elem_ancestors(&self, a: ElemId) -> impl Iterator<Item = ElemId> + '_ {
        self.elem_anc.row_iter(a.index()).map(|i| ElemId(i as u32))
    }

    /// The up-set of element `a` as raw closure-bitset words (bit `i` set
    /// iff `ElemId(i) ≤E a`); the backing store for order fingerprints.
    #[inline]
    pub fn elem_ancestor_words(&self, a: ElemId) -> &[u64] {
        self.elem_anc.row_words(a.index())
    }

    /// The up-set of relation `r` as raw closure-bitset words.
    #[inline]
    pub fn rel_ancestor_words(&self, r: RelId) -> &[u64] {
        self.rel_anc.row_words(r.index())
    }

    /// Words per element-ancestor row (`⌈|E|/64⌉`).
    #[inline]
    pub fn elem_words(&self) -> usize {
        self.elem_anc.words_per_row()
    }

    /// Words per relation-ancestor row (`⌈|R|/64⌉`).
    #[inline]
    pub fn rel_words(&self) -> usize {
        self.rel_anc.words_per_row()
    }

    /// The fact order of Definition 2.5: `f ≤ f'` iff all three components
    /// are pairwise ≤.
    ///
    /// Example 2.6: with `Sport ≤E Biking`,
    /// `⟨Sport, doAt, Central Park⟩ ≤ ⟨Biking, doAt, Central Park⟩`.
    #[inline]
    pub fn fact_leq(&self, f: Fact, g: Fact) -> bool {
        self.rel_leq(f.rel, g.rel)
            && self.elem_leq(f.subject, g.subject)
            && self.elem_leq(f.object, g.object)
    }

    /// Convenience constructor for a fact from names; `None` if any name is
    /// not interned.
    pub fn fact(&self, subject: &str, rel: &str, object: &str) -> Option<Fact> {
        Some(Fact::new(
            self.elem_id(subject)?,
            self.rel_id(rel)?,
            self.elem_id(object)?,
        ))
    }

    /// Renders a fact in the paper's RDF-ish notation `s r o`.
    pub fn fact_to_string(&self, f: Fact) -> String {
        format!(
            "{} {} {}",
            self.elem_name(f.subject),
            self.rel_name(f.rel),
            self.elem_name(f.object)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vocabulary {
        let mut b = VocabularyBuilder::new();
        b.elem_specializes("Activity", "Sport");
        b.elem_specializes("Sport", "Biking");
        b.elem_specializes("Sport", "Ball Game");
        b.elem_specializes("Ball Game", "Basketball");
        b.elem_specializes("Place", "City");
        b.elem_specializes("Place", "Attraction");
        b.rel_specializes("nearBy", "inside");
        b.relation("doAt");
        b.freeze().unwrap()
    }

    #[test]
    fn interning_is_idempotent() {
        let mut b = VocabularyBuilder::new();
        let a = b.element("X");
        let a2 = b.element("X");
        assert_eq!(a, a2);
        assert_eq!(b.num_elems(), 1);
    }

    #[test]
    fn leq_reflexive_transitive() {
        let v = sample();
        let act = v.elem_id("Activity").unwrap();
        let sport = v.elem_id("Sport").unwrap();
        let bb = v.elem_id("Basketball").unwrap();
        assert!(v.elem_leq(act, act));
        assert!(v.elem_leq(act, bb));
        assert!(v.elem_leq(sport, bb));
        assert!(!v.elem_leq(bb, sport));
        let place = v.elem_id("Place").unwrap();
        assert!(!v.elem_leq(place, bb));
        assert!(!v.elem_leq(act, place));
    }

    #[test]
    fn rel_order() {
        let v = sample();
        let near = v.rel_id("nearBy").unwrap();
        let inside = v.rel_id("inside").unwrap();
        let do_at = v.rel_id("doAt").unwrap();
        assert!(v.rel_leq(near, inside));
        assert!(!v.rel_leq(inside, near));
        assert!(v.rel_leq(do_at, do_at));
        assert!(!v.rel_leq(do_at, near));
    }

    #[test]
    fn children_and_parents() {
        let v = sample();
        let sport = v.elem_id("Sport").unwrap();
        let names: Vec<&str> = v
            .elem_children(sport)
            .iter()
            .map(|&c| v.elem_name(c))
            .collect();
        assert_eq!(names, vec!["Biking", "Ball Game"]);
        let act = v.elem_id("Activity").unwrap();
        assert_eq!(v.elem_parents(sport), &[act]);
    }

    #[test]
    fn descendants_iteration() {
        let v = sample();
        let sport = v.elem_id("Sport").unwrap();
        let mut names: Vec<&str> = v.elem_descendants(sport).map(|c| v.elem_name(c)).collect();
        names.sort_unstable();
        assert_eq!(names, vec!["Ball Game", "Basketball", "Biking", "Sport"]);
        assert_eq!(v.elem_descendant_count(sport), 4);
    }

    #[test]
    fn ancestors_are_transposed_descendants() {
        let v = sample();
        for a in v.elems() {
            for b in v.elems() {
                assert_eq!(
                    v.elem_leq(a, b),
                    v.elem_ancestors(b).any(|x| x == a),
                    "{} vs {}",
                    v.elem_name(a),
                    v.elem_name(b)
                );
            }
        }
        // raw words agree with the iterator
        let bb = v.elem_id("Basketball").unwrap();
        let act = v.elem_id("Activity").unwrap();
        let words = v.elem_ancestor_words(bb);
        assert_eq!(words.len(), v.elem_words());
        assert!(words[act.index() / 64] & (1u64 << (act.index() % 64)) != 0);
        let near = v.rel_id("nearBy").unwrap();
        let inside = v.rel_id("inside").unwrap();
        let rw = v.rel_ancestor_words(inside);
        assert!(rw[near.index() / 64] & (1u64 << (near.index() % 64)) != 0);
        assert!(
            v.rel_ancestor_words(near)[inside.index() / 64] & (1u64 << (inside.index() % 64)) == 0
        );
    }

    #[test]
    fn fact_order_example_2_6() {
        let v = sample();
        // f1 = ⟨Sport, doAt, CP⟩ ≤ f2 = ⟨Biking, doAt, CP⟩
        let mut b = VocabularyBuilder::new();
        b.elem_specializes("Activity", "Sport");
        b.elem_specializes("Sport", "Biking");
        b.element("Central Park");
        b.element("NYC");
        b.rel_specializes("nearBy", "inside");
        b.relation("doAt");
        let v2 = b.freeze().unwrap();
        let f1 = v2.fact("Sport", "doAt", "Central Park").unwrap();
        let f2 = v2.fact("Biking", "doAt", "Central Park").unwrap();
        assert!(v2.fact_leq(f1, f2));
        assert!(!v2.fact_leq(f2, f1));
        // With nearBy ≤R inside: ⟨CP, nearBy, NYC⟩ ≤ ⟨CP, inside, NYC⟩.
        // (The paper's Example 2.6 prints the inequality the other way
        // around; per Definition 2.5 with `nearBy ≤R inside` this is the
        // consistent direction.)
        let f3 = v2.fact("Central Park", "inside", "NYC").unwrap();
        let f4 = v2.fact("Central Park", "nearBy", "NYC").unwrap();
        assert!(v2.fact_leq(f4, f3));
        assert!(!v2.fact_leq(f3, f4));
        let _ = v; // silence
    }

    #[test]
    fn cycle_detection() {
        let mut b = VocabularyBuilder::new();
        b.elem_specializes("A", "B");
        b.elem_specializes("B", "C");
        b.elem_specializes("C", "A");
        match b.freeze() {
            Err(OntologyError::ElementCycle { .. }) => {}
            other => panic!("expected cycle error, got {other:?}"),
        }
    }

    #[test]
    fn relation_cycle_detection() {
        let mut b = VocabularyBuilder::new();
        b.rel_specializes("r", "s");
        b.rel_specializes("s", "r");
        assert!(matches!(
            b.freeze(),
            Err(OntologyError::RelationCycle { .. })
        ));
    }

    #[test]
    fn self_edge_is_noop() {
        let mut b = VocabularyBuilder::new();
        let a = b.element("A");
        b.elem_edge(a, a);
        let v = b.freeze().unwrap();
        assert!(v.elem_leq(a, a));
        assert!(v.elem_children(a).is_empty());
    }

    #[test]
    fn duplicate_edges_deduplicated() {
        let mut b = VocabularyBuilder::new();
        b.elem_specializes("A", "B");
        b.elem_specializes("A", "B");
        let v = b.freeze().unwrap();
        let a = v.elem_id("A").unwrap();
        assert_eq!(v.elem_children(a).len(), 1);
    }

    #[test]
    fn diamond_dag_supported() {
        // A ≤ B ≤ D and A ≤ C ≤ D: a diamond, not a cycle.
        let mut b = VocabularyBuilder::new();
        b.elem_specializes("A", "B");
        b.elem_specializes("A", "C");
        b.elem_specializes("B", "D");
        b.elem_specializes("C", "D");
        let v = b.freeze().unwrap();
        let a = v.elem_id("A").unwrap();
        let d = v.elem_id("D").unwrap();
        assert!(v.elem_leq(a, d));
        assert_eq!(v.elem_parents(d).len(), 2);
    }
}
