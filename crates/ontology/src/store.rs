//! The ontology store: universal facts plus the indexes query evaluation
//! needs, and a builder that wires order-defining relations into `≤E`.

use crate::error::OntologyError;
use crate::fact::{Fact, FactSet};
use crate::ids::{ElemId, RelId};
use crate::vocab::{Vocabulary, VocabularyBuilder};
use std::collections::{BTreeSet, HashMap, HashSet};

/// Builder for an [`Ontology`].
///
/// An ontology is "a fact-set with a particular type of data, intuitively
/// capturing universal truth" (Section 2). Facts whose relation is
/// *order-defining* (`subClassOf` and `instanceOf` by default, mirroring
/// Example 2.3) additionally contribute an edge to the element order `≤E`:
/// `s subClassOf o` makes `o ≤E s`.
///
/// ```
/// use ontology::OntologyBuilder;
/// let mut b = OntologyBuilder::new();
/// b.subclass("Sport", "Activity");
/// b.subclass("Biking", "Sport");
/// b.instance("Central Park", "Park");
/// b.fact("Central Park", "inside", "NYC");
/// b.label("Central Park", "child-friendly");
/// let ont = b.build().unwrap();
/// let v = ont.vocab();
/// let (act, biking) = (v.elem_id("Activity").unwrap(), v.elem_id("Biking").unwrap());
/// assert!(v.elem_leq(act, biking));
/// assert!(ont.contains(v.fact("Central Park", "inside", "NYC").unwrap()));
/// ```
#[derive(Debug, Clone)]
pub struct OntologyBuilder {
    vocab: VocabularyBuilder,
    facts: Vec<Fact>,
    labels: Vec<(ElemId, String)>,
    order_rels: HashSet<RelId>,
    subclass_rel: RelId,
    instance_rel: RelId,
}

impl Default for OntologyBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl OntologyBuilder {
    /// Creates a builder with `subClassOf` and `instanceOf` pre-registered
    /// as order-defining relations.
    pub fn new() -> Self {
        let mut vocab = VocabularyBuilder::new();
        let subclass_rel = vocab.relation("subClassOf");
        let instance_rel = vocab.relation("instanceOf");
        let order_rels = HashSet::from([subclass_rel, instance_rel]);
        OntologyBuilder {
            vocab,
            facts: Vec::new(),
            labels: Vec::new(),
            order_rels,
            subclass_rel,
            instance_rel,
        }
    }

    /// Access to the underlying vocabulary builder (e.g. to intern terms
    /// that appear only in personal databases, like `Boathouse` in
    /// Example 2.4).
    pub fn vocab_mut(&mut self) -> &mut VocabularyBuilder {
        &mut self.vocab
    }

    /// Interns an element name without asserting any fact about it.
    pub fn element(&mut self, name: &str) -> ElemId {
        self.vocab.element(name)
    }

    /// Interns a relation name.
    pub fn relation(&mut self, name: &str) -> RelId {
        self.vocab.relation(name)
    }

    /// Declares `general ≤R specific` over relations (e.g.
    /// `nearBy ≤R inside` from Figure 1).
    pub fn rel_specializes(&mut self, general: &str, specific: &str) {
        self.vocab.rel_specializes(general, specific);
    }

    /// Marks an additional relation as order-defining: its facts
    /// `s rel o` will also assert `o ≤E s`.
    pub fn order_relation(&mut self, name: &str) {
        let r = self.vocab.relation(name);
        self.order_rels.insert(r);
    }

    /// Adds the universal fact `subject rel object`, interning all names.
    pub fn fact(&mut self, subject: &str, rel: &str, object: &str) {
        let s = self.vocab.element(subject);
        let r = self.vocab.relation(rel);
        let o = self.vocab.element(object);
        self.fact_ids(s, r, o);
    }

    /// Id-based form of [`fact`](Self::fact).
    pub fn fact_ids(&mut self, subject: ElemId, rel: RelId, object: ElemId) {
        if self.order_rels.contains(&rel) {
            // `s subClassOf o` / `s instanceOf o` ⇒ the class `o` is the
            // more general term: `o ≤E s`.
            self.vocab.elem_edge(object, subject);
        }
        self.facts.push(Fact::new(subject, rel, object));
    }

    /// Adds a fact **without** the order-defining side effect (used when
    /// restoring snapshots whose order edges are captured explicitly).
    pub fn raw_fact(&mut self, subject: ElemId, rel: RelId, object: ElemId) {
        self.facts.push(Fact::new(subject, rel, object));
    }

    /// Id-based form of [`label`](Self::label).
    pub fn label_id(&mut self, elem: ElemId, label: &str) {
        self.labels.push((elem, label.to_owned()));
    }

    /// Shorthand for `child subClassOf parent`.
    pub fn subclass(&mut self, child: &str, parent: &str) {
        self.fact(child, "subClassOf", parent);
    }

    /// Shorthand for `instance instanceOf class`.
    pub fn instance(&mut self, instance: &str, class: &str) {
        self.fact(instance, "instanceOf", class);
    }

    /// Attaches a string label to an element (queried with
    /// `$x hasLabel "…"`). Labels are not inherited along `≤E`.
    pub fn label(&mut self, elem: &str, label: &str) {
        let e = self.vocab.element(elem);
        self.labels.push((e, label.to_owned()));
    }

    /// Freezes the vocabulary and builds the indexed ontology.
    pub fn build(self) -> Result<Ontology, OntologyError> {
        let vocab = self.vocab.freeze()?;
        let mut by_rel: Vec<Vec<Fact>> = vec![Vec::new(); vocab.num_rels()];
        let facts = FactSet::from_iter(self.facts);
        for f in facts.iter() {
            by_rel[f.rel.index()].push(f);
        }
        let mut labels: HashMap<ElemId, BTreeSet<String>> = HashMap::new();
        for (e, l) in self.labels {
            labels.entry(e).or_default().insert(l);
        }
        Ok(Ontology {
            subclass_rel: self.subclass_rel,
            instance_rel: self.instance_rel,
            vocab,
            facts,
            by_rel,
            labels,
        })
    }
}

/// A frozen ontology: the vocabulary plus the universal fact-set `O` and
/// lookup indexes.
#[derive(Debug, Clone)]
pub struct Ontology {
    vocab: Vocabulary,
    facts: FactSet,
    by_rel: Vec<Vec<Fact>>,
    labels: HashMap<ElemId, BTreeSet<String>>,
    subclass_rel: RelId,
    instance_rel: RelId,
}

impl Ontology {
    /// The underlying vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The universal fact-set `O`.
    pub fn facts(&self) -> &FactSet {
        &self.facts
    }

    /// The id of the built-in `subClassOf` relation.
    pub fn subclass_rel(&self) -> RelId {
        self.subclass_rel
    }

    /// The id of the built-in `instanceOf` relation.
    pub fn instance_rel(&self) -> RelId {
        self.instance_rel
    }

    /// Whether the exact fact is asserted.
    pub fn contains(&self, f: Fact) -> bool {
        self.facts.contains(f)
    }

    /// Whether `f` is semantically implied: `∃ f' ∈ O` with `f ≤ f'`.
    pub fn implies(&self, f: Fact) -> bool {
        // Only facts whose relation specializes f.rel can imply f.
        self.vocab
            .rel_descendants(f.rel)
            .flat_map(|r| self.facts_with_rel(r))
            .any(|&g| self.vocab.fact_leq(f, g))
    }

    /// Whether the whole fact-set is implied by the ontology (`A ≤ O`).
    pub fn implies_set(&self, a: &FactSet) -> bool {
        a.iter().all(|f| self.implies(f))
    }

    /// All asserted facts with the given relation (exact match).
    pub fn facts_with_rel(&self, r: RelId) -> &[Fact] {
        &self.by_rel[r.index()]
    }

    /// Whether `elem` carries `label`.
    pub fn has_label(&self, elem: ElemId, label: &str) -> bool {
        self.labels.get(&elem).is_some_and(|s| s.contains(label))
    }

    /// All elements carrying `label`, in id order.
    pub fn elems_with_label(&self, label: &str) -> Vec<ElemId> {
        let mut v: Vec<ElemId> = self
            .labels
            .iter()
            .filter(|(_, set)| set.contains(label))
            .map(|(&e, _)| e)
            .collect();
        v.sort_unstable();
        v
    }

    /// Number of asserted facts.
    pub fn num_facts(&self) -> usize {
        self.facts.len()
    }

    /// The labels attached to `elem`, in sorted order.
    pub fn labels_of(&self, elem: ElemId) -> impl Iterator<Item = &str> + '_ {
        self.labels
            .get(&elem)
            .into_iter()
            .flat_map(|set| set.iter().map(String::as_str))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ontology {
        let mut b = OntologyBuilder::new();
        b.subclass("Sport", "Activity");
        b.subclass("Ball Game", "Sport");
        b.subclass("Basketball", "Ball Game");
        b.subclass("Park", "Outdoor");
        b.instance("Central Park", "Park");
        b.fact("Central Park", "inside", "NYC");
        b.fact("Maoz Veg", "nearBy", "Central Park");
        b.rel_specializes("nearBy", "inside");
        b.label("Central Park", "child-friendly");
        b.element("Boathouse"); // vocabulary-only element
        b.build().unwrap()
    }

    #[test]
    fn order_defining_relations_feed_leq() {
        let o = sample();
        let v = o.vocab();
        let act = v.elem_id("Activity").unwrap();
        let bb = v.elem_id("Basketball").unwrap();
        assert!(v.elem_leq(act, bb));
        // instanceOf too: Park ≤E Central Park.
        let park = v.elem_id("Park").unwrap();
        let cp = v.elem_id("Central Park").unwrap();
        assert!(v.elem_leq(park, cp));
    }

    #[test]
    fn implication_via_relation_order() {
        let o = sample();
        let v = o.vocab();
        // Central Park inside NYC is asserted; nearBy ≤R inside, so
        // ⟨Central Park, nearBy, NYC⟩ is implied though not asserted.
        let near = v.fact("Central Park", "nearBy", "NYC").unwrap();
        assert!(!o.contains(near));
        assert!(o.implies(near));
    }

    #[test]
    fn implication_via_element_order() {
        let o = sample();
        let v = o.vocab();
        // Maoz Veg nearBy Central Park asserted. Outdoor ≤ Park ≤ Central
        // Park, so ⟨Maoz Veg, nearBy, Outdoor⟩... wait: object must be ≤ the
        // asserted object: Outdoor ≤E Central Park holds.
        let f = v.fact("Maoz Veg", "nearBy", "Outdoor").unwrap();
        assert!(o.implies(f));
        let not = v.fact("Maoz Veg", "inside", "Central Park").unwrap();
        assert!(!o.implies(not));
    }

    #[test]
    fn implies_set_follows_members() {
        let o = sample();
        let v = o.vocab();
        let ok = FactSet::from_iter([
            v.fact("Central Park", "inside", "NYC").unwrap(),
            v.fact("Central Park", "nearBy", "NYC").unwrap(),
        ]);
        assert!(o.implies_set(&ok));
        let bad = FactSet::from_iter([v.fact("Maoz Veg", "inside", "NYC").unwrap()]);
        assert!(!o.implies_set(&bad));
    }

    #[test]
    fn labels() {
        let o = sample();
        let v = o.vocab();
        let cp = v.elem_id("Central Park").unwrap();
        let park = v.elem_id("Park").unwrap();
        assert!(o.has_label(cp, "child-friendly"));
        assert!(!o.has_label(park, "child-friendly")); // not inherited
        assert_eq!(o.elems_with_label("child-friendly"), vec![cp]);
        assert!(o.elems_with_label("nonexistent").is_empty());
    }

    #[test]
    fn facts_with_rel_index() {
        let o = sample();
        let v = o.vocab();
        let inside = v.rel_id("inside").unwrap();
        assert_eq!(o.facts_with_rel(inside).len(), 1);
        let near = v.rel_id("nearBy").unwrap();
        assert_eq!(o.facts_with_rel(near).len(), 1);
    }

    #[test]
    fn vocabulary_only_elements_have_no_facts() {
        let o = sample();
        let v = o.vocab();
        let boathouse = v.elem_id("Boathouse").unwrap();
        assert!(o
            .facts()
            .iter()
            .all(|f| f.subject != boathouse && f.object != boathouse));
    }
}
