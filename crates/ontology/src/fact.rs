//! Facts and fact-sets (Definitions 2.2 and 2.5).

use crate::ids::{ElemId, RelId};
use crate::vocab::Vocabulary;

/// A fact `⟨e1, r, e2⟩ ∈ E × R × E` (Definition 2.2), e.g.
/// `Biking doAt Central Park`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Fact {
    /// The first element (RDF subject).
    pub subject: ElemId,
    /// The relation (RDF predicate).
    pub rel: RelId,
    /// The second element (RDF object).
    pub object: ElemId,
}

impl Fact {
    /// Creates a fact.
    #[inline]
    pub fn new(subject: ElemId, rel: RelId, object: ElemId) -> Self {
        Fact {
            subject,
            rel,
            object,
        }
    }
}

/// A set of facts (Definition 2.2), stored sorted and deduplicated so that
/// equality and hashing are canonical.
///
/// Fact-sets serve three roles in the paper: the ontology's universal facts,
/// the transactions of a personal database (Table 3), and query answers.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FactSet(Vec<Fact>);

impl FactSet {
    /// The empty fact-set.
    pub fn new() -> Self {
        FactSet(Vec::new())
    }

    /// Builds a fact-set from an iterator, sorting and deduplicating.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = Fact>>(iter: I) -> Self {
        let mut v: Vec<Fact> = iter.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        FactSet(v)
    }

    /// Inserts a fact, keeping the canonical order. Returns `true` if the
    /// fact was not already present.
    pub fn insert(&mut self, f: Fact) -> bool {
        match self.0.binary_search(&f) {
            Ok(_) => false,
            Err(pos) => {
                self.0.insert(pos, f);
                true
            }
        }
    }

    /// Whether the exact fact (not modulo ≤) is present.
    pub fn contains(&self, f: Fact) -> bool {
        self.0.binary_search(&f).is_ok()
    }

    /// Number of facts.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates over the facts in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = Fact> + '_ {
        self.0.iter().copied()
    }

    /// The facts as a slice.
    pub fn as_slice(&self) -> &[Fact] {
        &self.0
    }

    /// The fact-set order of Definition 2.5: `self ≤ other` iff every fact
    /// of `self` is ≤ **some** fact of `other`.
    ///
    /// When `other` is a transaction `T`, `self ≤ T` is read as "`T` implies
    /// `self`" — the transaction supports the (possibly more general)
    /// pattern. Example 2.6: `{⟨Sport, doAt, Central Park⟩} ≤ T1`.
    pub fn leq(&self, vocab: &Vocabulary, other: &FactSet) -> bool {
        self.0
            .iter()
            .all(|&f| other.0.iter().any(|&g| vocab.fact_leq(f, g)))
    }

    /// Whether the single fact `f` is implied by this set viewed as a
    /// transaction (`f ≤ self`).
    pub fn implies_fact(&self, vocab: &Vocabulary, f: Fact) -> bool {
        self.0.iter().any(|&g| vocab.fact_leq(f, g))
    }

    /// Union of two fact-sets.
    pub fn union(&self, other: &FactSet) -> FactSet {
        FactSet::from_iter(self.iter().chain(other.iter()))
    }

    /// Renders the set in the paper's notation, facts joined by `". "`.
    pub fn to_display(&self, vocab: &Vocabulary) -> String {
        self.0
            .iter()
            .map(|&f| vocab.fact_to_string(f))
            .collect::<Vec<_>>()
            .join(". ")
    }
}

impl FromIterator<Fact> for FactSet {
    fn from_iter<I: IntoIterator<Item = Fact>>(iter: I) -> Self {
        FactSet::from_iter(iter)
    }
}

impl IntoIterator for FactSet {
    type Item = Fact;
    type IntoIter = std::vec::IntoIter<Fact>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a FactSet {
    type Item = &'a Fact;
    type IntoIter = std::slice::Iter<'a, Fact>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vocab::VocabularyBuilder;

    fn vocab() -> Vocabulary {
        let mut b = VocabularyBuilder::new();
        b.elem_specializes("Activity", "Sport");
        b.elem_specializes("Sport", "Biking");
        b.elem_specializes("Sport", "Basketball");
        b.element("Central Park");
        b.element("Maoz Veg");
        b.element("Falafel");
        b.element("Food");
        b.elem_specializes("Food", "Falafel");
        b.relation("doAt");
        b.relation("eatAt");
        b.freeze().unwrap()
    }

    #[test]
    fn canonical_form() {
        let v = vocab();
        let f1 = v.fact("Biking", "doAt", "Central Park").unwrap();
        let f2 = v.fact("Falafel", "eatAt", "Maoz Veg").unwrap();
        let a = FactSet::from_iter([f2, f1, f2]);
        let b = FactSet::from_iter([f1, f2]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn insert_dedups() {
        let v = vocab();
        let f = v.fact("Biking", "doAt", "Central Park").unwrap();
        let mut s = FactSet::new();
        assert!(s.insert(f));
        assert!(!s.insert(f));
        assert_eq!(s.len(), 1);
        assert!(s.contains(f));
    }

    #[test]
    fn factset_leq_basic() {
        let v = vocab();
        // T1 = Basketball doAt CP . Falafel eatAt Maoz
        let t1 = FactSet::from_iter([
            v.fact("Basketball", "doAt", "Central Park").unwrap(),
            v.fact("Falafel", "eatAt", "Maoz Veg").unwrap(),
        ]);
        let general = FactSet::from_iter([v.fact("Sport", "doAt", "Central Park").unwrap()]);
        assert!(general.leq(&v, &t1)); // f1 ≤ T1 as in Example 2.6
        let food = FactSet::from_iter([v.fact("Food", "eatAt", "Maoz Veg").unwrap()]);
        assert!(food.leq(&v, &t1));
        let biking = FactSet::from_iter([v.fact("Biking", "doAt", "Central Park").unwrap()]);
        assert!(!biking.leq(&v, &t1)); // Biking ≰ Basketball
    }

    #[test]
    fn empty_set_leq_everything() {
        let v = vocab();
        let empty = FactSet::new();
        let t = FactSet::from_iter([v.fact("Biking", "doAt", "Central Park").unwrap()]);
        assert!(empty.leq(&v, &t));
        assert!(empty.leq(&v, &empty));
        assert!(!t.leq(&v, &empty));
    }

    #[test]
    fn two_facts_may_match_one() {
        let v = vocab();
        // Both general facts are implied by the single specific fact.
        let t = FactSet::from_iter([v.fact("Basketball", "doAt", "Central Park").unwrap()]);
        let a = FactSet::from_iter([
            v.fact("Sport", "doAt", "Central Park").unwrap(),
            v.fact("Activity", "doAt", "Central Park").unwrap(),
        ]);
        assert!(a.leq(&v, &t));
    }

    #[test]
    fn union_is_canonical() {
        let v = vocab();
        let f1 = v.fact("Biking", "doAt", "Central Park").unwrap();
        let f2 = v.fact("Falafel", "eatAt", "Maoz Veg").unwrap();
        let a = FactSet::from_iter([f1]);
        let b = FactSet::from_iter([f2, f1]);
        let u = a.union(&b);
        assert_eq!(u.len(), 2);
        assert_eq!(u, FactSet::from_iter([f1, f2]));
    }

    #[test]
    fn display_notation() {
        let v = vocab();
        let s = FactSet::from_iter([
            v.fact("Biking", "doAt", "Central Park").unwrap(),
            v.fact("Falafel", "eatAt", "Maoz Veg").unwrap(),
        ]);
        let rendered = s.to_display(&v);
        assert!(rendered.contains("Biking doAt Central Park"));
        assert!(rendered.contains(". "));
    }
}
