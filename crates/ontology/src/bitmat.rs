//! A compact square bit matrix used to store the reflexive–transitive
//! closure of the vocabulary's specialization DAGs.

/// A dense `n × n` bit matrix backed by `u64` words.
///
/// Row `i` stores the set of nodes reachable from node `i` (including `i`
/// itself once the closure has been made reflexive). Membership tests are a
/// single word load; row unions (the closure recurrence) are word-parallel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// Creates an all-zero `n × n` matrix.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64);
        BitMatrix {
            n,
            words_per_row,
            bits: vec![0; n * words_per_row],
        }
    }

    /// The dimension `n`.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix has dimension zero.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Sets bit `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize) {
        debug_assert!(row < self.n && col < self.n);
        self.bits[row * self.words_per_row + col / 64] |= 1u64 << (col % 64);
    }

    /// Tests bit `(row, col)`.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> bool {
        debug_assert!(row < self.n && col < self.n);
        self.bits[row * self.words_per_row + col / 64] & (1u64 << (col % 64)) != 0
    }

    /// ORs row `src` into row `dst` (`dst |= src`); used to propagate
    /// reachability from a child to its parent.
    pub fn or_row_into(&mut self, src: usize, dst: usize) {
        debug_assert!(src < self.n && dst < self.n);
        if src == dst {
            return;
        }
        let w = self.words_per_row;
        let (a, b) = (dst * w, src * w);
        // Split borrows via `split_at_mut` to copy within the same buffer.
        if a < b {
            let (lo, hi) = self.bits.split_at_mut(b);
            for i in 0..w {
                lo[a + i] |= hi[i];
            }
        } else {
            let (lo, hi) = self.bits.split_at_mut(a);
            for i in 0..w {
                hi[i] |= lo[b + i];
            }
        }
    }

    /// The raw words of row `row` (low bit of word 0 is column 0).
    #[inline]
    pub fn row_words(&self, row: usize) -> &[u64] {
        let w = self.words_per_row;
        &self.bits[row * w..(row + 1) * w]
    }

    /// Number of `u64` words per row.
    #[inline]
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// The transposed matrix: `t.get(i, j) == self.get(j, i)`. Used to
    /// turn the descendant closure into an ancestor closure.
    pub fn transposed(&self) -> BitMatrix {
        let mut t = BitMatrix::new(self.n);
        for r in 0..self.n {
            for c in self.row_iter(r) {
                t.set(c, r);
            }
        }
        t
    }

    /// Number of set bits in row `row`.
    pub fn row_count(&self, row: usize) -> usize {
        let w = self.words_per_row;
        self.bits[row * w..(row + 1) * w]
            .iter()
            .map(|x| x.count_ones() as usize)
            .sum()
    }

    /// Iterates over the column indices set in row `row`, in increasing order.
    pub fn row_iter(&self, row: usize) -> impl Iterator<Item = usize> + '_ {
        let w = self.words_per_row;
        let words = &self.bits[row * w..(row + 1) * w];
        words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut word = word;
            std::iter::from_fn(move || {
                if word == 0 {
                    None
                } else {
                    let bit = word.trailing_zeros() as usize;
                    word &= word - 1;
                    Some(wi * 64 + bit)
                }
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut m = BitMatrix::new(130);
        assert!(!m.get(0, 0));
        m.set(0, 0);
        m.set(5, 129);
        m.set(129, 64);
        assert!(m.get(0, 0));
        assert!(m.get(5, 129));
        assert!(m.get(129, 64));
        assert!(!m.get(5, 128));
        assert!(!m.get(64, 129));
    }

    #[test]
    fn or_row_into_merges() {
        let mut m = BitMatrix::new(70);
        m.set(1, 3);
        m.set(1, 69);
        m.set(2, 7);
        m.or_row_into(1, 2);
        assert!(m.get(2, 3));
        assert!(m.get(2, 7));
        assert!(m.get(2, 69));
        assert!(!m.get(1, 7)); // src untouched
                               // both directions of the internal split
        m.or_row_into(2, 1);
        assert!(m.get(1, 7));
    }

    #[test]
    fn or_row_into_self_is_noop() {
        let mut m = BitMatrix::new(8);
        m.set(3, 4);
        m.or_row_into(3, 3);
        assert!(m.get(3, 4));
        assert_eq!(m.row_count(3), 1);
    }

    #[test]
    fn row_iter_yields_sorted_columns() {
        let mut m = BitMatrix::new(200);
        for c in [0usize, 1, 63, 64, 127, 128, 199] {
            m.set(9, c);
        }
        let got: Vec<usize> = m.row_iter(9).collect();
        assert_eq!(got, vec![0, 1, 63, 64, 127, 128, 199]);
        assert_eq!(m.row_count(9), 7);
    }

    #[test]
    fn transpose_flips_coordinates() {
        let mut m = BitMatrix::new(100);
        m.set(3, 70);
        m.set(70, 3);
        m.set(5, 5);
        let t = m.transposed();
        assert!(t.get(70, 3));
        assert!(t.get(3, 70));
        assert!(t.get(5, 5));
        assert!(!t.get(3, 5));
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn row_words_exposes_bits() {
        let mut m = BitMatrix::new(130);
        m.set(1, 0);
        m.set(1, 64);
        m.set(1, 129);
        let w = m.row_words(1);
        assert_eq!(w.len(), m.words_per_row());
        assert_eq!(w[0], 1);
        assert_eq!(w[1], 1);
        assert_eq!(w[2], 2);
    }

    #[test]
    fn empty_matrix() {
        let m = BitMatrix::new(0);
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
    }
}
