//! Error type for vocabulary/ontology construction.

use std::fmt;

/// Errors raised while building a [`Vocabulary`](crate::Vocabulary) or an
/// [`Ontology`](crate::Ontology).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OntologyError {
    /// The element specialization graph contains a cycle (the partial order
    /// `≤E` of Definition 2.1 would not be antisymmetric).
    ElementCycle {
        /// Name of an element on the cycle.
        on: String,
    },
    /// The relation specialization graph contains a cycle.
    RelationCycle {
        /// Name of a relation on the cycle.
        on: String,
    },
    /// A name was used both where an element and where a relation is
    /// expected in a way the builder cannot disambiguate.
    UnknownName {
        /// The offending name.
        name: String,
    },
}

impl fmt::Display for OntologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OntologyError::ElementCycle { on } => {
                write!(f, "element order ≤E contains a cycle through {on:?}")
            }
            OntologyError::RelationCycle { on } => {
                write!(f, "relation order ≤R contains a cycle through {on:?}")
            }
            OntologyError::UnknownName { name } => write!(f, "unknown name {name:?}"),
        }
    }
}

impl std::error::Error for OntologyError {}
