//! A minimal JSON value type, parser and writer.
//!
//! The build environment has no crates.io access, so the snapshot modules
//! ([`crate::snapshot`] and `oassis-core`'s crowd cache) serialize through
//! this hand-rolled implementation instead of `serde_json`. It supports
//! the full JSON grammar; numbers are kept as `f64`, which is exact for
//! every id (`u32`) and support value this workspace stores.

use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

/// A parse (or shape-validation) failure.
#[derive(Debug, Clone)]
pub struct JsonError {
    /// What went wrong.
    pub msg: String,
    /// Byte offset of the failure, when known.
    pub offset: Option<usize>,
}

impl JsonError {
    /// A shape error raised while interpreting an already-parsed value.
    pub fn shape(msg: impl Into<String>) -> Self {
        JsonError {
            msg: msg.into(),
            offset: None,
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(at) => write!(f, "{} at byte {at}", self.msg),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// The object's fields, or a shape error.
    pub fn as_obj(&self) -> Result<&[(String, Json)], JsonError> {
        match self {
            Json::Obj(fields) => Ok(fields),
            other => Err(JsonError::shape(format!(
                "expected object, got {}",
                other.kind()
            ))),
        }
    }

    /// A required object field.
    pub fn field(&self, name: &str) -> Result<&Json, JsonError> {
        self.as_obj()?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| JsonError::shape(format!("missing field {name:?}")))
    }

    /// The array's elements, or a shape error.
    pub fn as_arr(&self) -> Result<&[Json], JsonError> {
        match self {
            Json::Arr(items) => Ok(items),
            other => Err(JsonError::shape(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }

    /// The string value, or a shape error.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(JsonError::shape(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }

    /// The numeric value, or a shape error.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Json::Num(n) => Ok(*n),
            other => Err(JsonError::shape(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }

    /// The value as a `u32`, or a shape error.
    pub fn as_u32(&self) -> Result<u32, JsonError> {
        let n = self.as_f64()?;
        if n.fract() == 0.0 && (0.0..=u32::MAX as f64).contains(&n) {
            Ok(n as u32)
        } else {
            Err(JsonError::shape(format!("expected u32, got {n}")))
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            // {:?} prints the shortest representation that parses back to
            // the same f64, so floats round-trip exactly
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 1e15 => write!(f, "{}", *n as i64),
            Json::Num(n) => write!(f, "{n:?}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Parses a JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            msg: msg.to_owned(),
            offset: Some(self.pos),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_lit(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self
            .peek()
            .ok_or_else(|| self.err("unexpected end of input"))?
        {
            b'n' => {
                if self.eat_lit("null") {
                    Ok(Json::Null)
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b't' => {
                if self.eat_lit("true") {
                    Ok(Json::Bool(true))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b'f' => {
                if self.eat_lit("false") {
                    Ok(Json::Bool(false))
                } else {
                    Err(self.err("invalid literal"))
                }
            }
            b'"' => self.string().map(Json::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Json::Arr(items));
                        }
                        _ => return Err(self.err("expected ',' or ']'")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Json::Obj(fields));
                        }
                        _ => return Err(self.err("expected ',' or '}'")),
                    }
                }
            }
            b'-' | b'0'..=b'9' => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or_else(|| self.err("unterminated string"))? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // surrogate pairs are not needed by our writers;
                            // reject rather than mis-decode
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unpaired surrogate"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                b => {
                    // consume one UTF-8 code point
                    let len = match b {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8")),
                    };
                    let chunk = self
                        .bytes
                        .get(self.pos..self.pos + len)
                        .ok_or_else(|| self.err("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos += len;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_a_nested_document() {
        let doc = Json::Obj(vec![
            ("version".into(), Json::Num(1.0)),
            (
                "items".into(),
                Json::Arr(vec![
                    Json::Str("a \"quoted\" name\nline2".into()),
                    Json::Num(0.25),
                    Json::Num(-3.0),
                    Json::Null,
                    Json::Bool(true),
                ]),
            ),
            ("empty_arr".into(), Json::Arr(vec![])),
            ("empty_obj".into(), Json::Obj(vec![])),
        ]);
        let text = doc.to_string();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for v in [0.1, 1.0 / 3.0, 5.0 / 12.0, f64::MAX, 1e-300, 0.0] {
            let text = Json::Num(v).to_string();
            assert_eq!(parse(&text).unwrap().as_f64().unwrap(), v, "{text}");
        }
    }

    #[test]
    fn malformed_documents_are_rejected() {
        for bad in [
            "{not json",
            "",
            "[1,",
            "{\"a\":}",
            "nul",
            "\"unterminated",
            "1 2",
        ] {
            assert!(parse(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn unicode_strings_survive() {
        let doc = Json::Str("café ≤E 東京".into());
        assert_eq!(parse(&doc.to_string()).unwrap(), doc);
    }
}
