//! Dense interned identifiers for vocabulary terms.

use std::fmt;

/// Identifier of an element name in a [`Vocabulary`](crate::Vocabulary).
///
/// Elements are nouns ("Place", "NYC") or actions ("Biking"). Ids are dense
/// indices assigned in interning order, which makes them usable directly as
/// array/bitset offsets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ElemId(pub u32);

/// Identifier of a relation name in a [`Vocabulary`](crate::Vocabulary).
///
/// Relations are terms such as `inside`, `nearBy`, `doAt` or `eatAt`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RelId(pub u32);

impl ElemId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl RelId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ElemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for RelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}
