//! Deterministic generators for the three evaluation domains of
//! Section 6.3 (travel, culinary, self-treatment).
//!
//! The paper ran these queries over a proprietary combination of WordNet,
//! YAGO and Foursquare data; per the reproduction's substitution rule we
//! generate ontologies whose **query assignment DAGs match the sizes the
//! paper reports** ("the DAGs of the three queries contained 4773, 10512
//! and 2307 nodes respectively (without multiplicities)"), since the
//! mining-algorithm cost depends on DAG shape and ground-truth density, not
//! on the ontology's vocabulary strings.
//!
//! Sizing: each query's satisfying clause uses variables whose valid value
//! sets are ancestor-closed taxonomy trees (or instance layers below them),
//! and the valid assignment set is a full product, so the expanded DAG size
//! is the product of the per-variable closure sizes:
//!
//! * travel — 43 (30 labeled attraction instances + 12 classes + root) ×
//!   37 (activity tree) × 3 (2 restaurants + class) = **4773** (paper: 4773);
//! * culinary — 72 (dish tree) × 146 (drink tree) = **10512** (paper: 10512);
//! * self-treatment — 42 (remedy tree) × 55 (symptom tree) = **2310**
//!   (paper: 2307; 2307 = 3 × 769 has no balanced factorization, so this is
//!   the closest product shape, 0.13% off).

use crate::store::{Ontology, OntologyBuilder};

/// Scale multiplier for the generated domains. `DomainScale::paper()` is
/// calibrated to the DAG sizes reported in Section 6.3; smaller scales are
/// useful in tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DomainScale {
    /// Divide every taxonomy size by roughly this factor (1 = paper scale).
    pub shrink: usize,
}

impl DomainScale {
    /// The calibrated paper-sized domains.
    pub fn paper() -> Self {
        DomainScale { shrink: 1 }
    }

    /// A small variant for fast tests (~hundreds of DAG nodes).
    pub fn small() -> Self {
        DomainScale { shrink: 4 }
    }

    fn scaled(&self, n: usize) -> usize {
        (n / self.shrink).max(2)
    }
}

/// A generated evaluation domain: ontology, OASSIS-QL query text and the
/// expected size of the expanded assignment DAG (without multiplicities).
#[derive(Debug, Clone)]
pub struct GeneratedDomain {
    /// Domain name ("travel", "culinary", "self-treatment").
    pub name: &'static str,
    /// The generated ontology.
    pub ontology: Ontology,
    /// OASSIS-QL source of the domain query.
    pub query: String,
    /// Expected expanded DAG size at multiplicity 1 (paper scale only).
    pub expected_dag_nodes: usize,
}

/// Adds a rooted tree with exactly `total` class nodes (including the root)
/// under `root`, using `subClassOf` facts. Children are attached in a
/// `branching`-ary pattern, so depth ≈ log_branching(total). Returns the
/// node names, root first, in creation order.
fn class_tree(
    b: &mut OntologyBuilder,
    root: &str,
    prefix: &str,
    total: usize,
    branching: usize,
) -> Vec<String> {
    assert!(total >= 1 && branching >= 1);
    let mut names = Vec::with_capacity(total);
    names.push(root.to_owned());
    for i in 1..total {
        let name = format!("{prefix}{i}");
        let parent = names[(i - 1) / branching].clone();
        b.subclass(&name, &parent);
        names.push(name);
    }
    names
}

/// The travel-recommendation domain (the paper's running-example query
/// adapted to Tel Aviv, Section 6.3). Instance-level query: `$x` and `$z`
/// range over instances, so MSPs whose `x`/`z` generalized to a class are
/// **not valid** — reproducing the "#valid < #MSPs" phenomenon of
/// Figure 4a.
pub fn travel(scale: DomainScale) -> GeneratedDomain {
    let mut b = OntologyBuilder::new();
    b.rel_specializes("nearBy", "inside");
    b.relation("doAt");
    b.relation("eatAt");

    // Attractions: root + 12 classes + 30 labeled instances (43 closure).
    let n_classes = scale.scaled(12);
    let n_instances = scale.scaled(30);
    let classes = class_tree(&mut b, "Attraction", "AttractionType", 1 + n_classes, 4);
    b.instance("Tel Aviv", "City");
    for i in 0..n_instances {
        let name = format!("Attraction{}", i + 1);
        // Attach to a class (skip the root so instances sit at depth ≥ 2).
        let class = &classes[1 + (i % n_classes)];
        b.instance(&name, class);
        b.fact(&name, "inside", "Tel Aviv");
        b.label(&name, "child-friendly");
    }
    // A few unlabeled attractions that never enter the DAG.
    for i in 0..scale.scaled(6) {
        let name = format!("DullAttraction{}", i + 1);
        b.instance(&name, &classes[1]);
        b.fact(&name, "inside", "Tel Aviv");
    }

    // Activities: 37-node class tree.
    class_tree(&mut b, "Activity", "ActivityKind", scale.scaled(37), 3);

    // Restaurants: class + 2 instances, each near every labeled attraction.
    // (Restaurant is a standalone root: attaching it to a super-class would
    // enlarge the generalization closure and hence the DAG.)
    let n_rest = 2;
    b.element("Restaurant");
    for r in 0..n_rest {
        let rname = format!("Restaurant{}", r + 1);
        b.instance(&rname, "Restaurant");
        for i in 0..n_instances {
            b.fact(&rname, "nearBy", &format!("Attraction{}", i + 1));
        }
    }

    // Vocabulary-only food terms for the `[] eatAt $z` meta-fact and for
    // MORE tips (like `Boathouse` in Example 2.4, they carry no universal
    // facts and never enter the DAG).
    for i in 0..scale.scaled(6) {
        b.element(&format!("Snack{}", i + 1));
    }
    b.element("Rent Gear");

    let query = r#"
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside "Tel Aviv".
  $x hasLabel "child-friendly".
  $y subClassOf* Activity.
  $z instanceOf Restaurant.
  $z nearBy $x
SATISFYING
  $y+ doAt $x.
  [] eatAt $z.
  MORE
WITH SUPPORT = 0.2
"#
    .trim()
    .to_owned();

    let expected = (1 + n_classes + n_instances) * scale.scaled(37) * (n_rest + 1);
    GeneratedDomain {
        name: "travel",
        ontology: b.build().expect("acyclic"),
        query,
        expected_dag_nodes: expected,
    }
}

/// The culinary-preferences domain: popular combinations of dishes and
/// drinks. Class-level query (`$x`, `$y` bind to classes), so **all** MSPs
/// are valid, matching footnote 7 for Figures 4b–4c.
pub fn culinary(scale: DomainScale) -> GeneratedDomain {
    let mut b = OntologyBuilder::new();
    b.relation("servedWith");
    class_tree(&mut b, "Dish", "DishKind", scale.scaled(72), 3);
    class_tree(&mut b, "Drink", "DrinkKind", scale.scaled(146), 3);

    let query = r#"
SELECT FACT-SETS
WHERE
  $x subClassOf* Dish.
  $y subClassOf* Drink
SATISFYING
  $x+ servedWith $y
WITH SUPPORT = 0.2
"#
    .trim()
    .to_owned();

    let expected = scale.scaled(72) * scale.scaled(146);
    GeneratedDomain {
        name: "culinary",
        ontology: b.build().expect("acyclic"),
        query,
        expected_dag_nodes: expected,
    }
}

/// The self-treatment domain: what crowd members take to relieve common
/// symptoms. Class-level, the smallest of the three DAGs.
pub fn self_treatment(scale: DomainScale) -> GeneratedDomain {
    let mut b = OntologyBuilder::new();
    b.relation("takenFor");
    class_tree(&mut b, "Remedy", "RemedyKind", scale.scaled(42), 3);
    class_tree(&mut b, "Symptom", "SymptomKind", scale.scaled(55), 3);

    let query = r#"
SELECT FACT-SETS
WHERE
  $x subClassOf* Remedy.
  $y subClassOf* Symptom
SATISFYING
  $x takenFor $y
WITH SUPPORT = 0.2
"#
    .trim()
    .to_owned();

    let expected = scale.scaled(42) * scale.scaled(55);
    GeneratedDomain {
        name: "self-treatment",
        ontology: b.build().expect("acyclic"),
        query,
        expected_dag_nodes: expected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn travel_builds_at_paper_scale() {
        let d = travel(DomainScale::paper());
        assert_eq!(d.expected_dag_nodes, 4773);
        let v = d.ontology.vocab();
        assert!(v.elem_id("Attraction30").is_some());
        assert!(v.elem_id("Restaurant2").is_some());
        // every labeled attraction has both restaurants nearby
        let near = v.rel_id("nearBy").unwrap();
        assert_eq!(d.ontology.facts_with_rel(near).len(), 60);
        assert_eq!(d.ontology.elems_with_label("child-friendly").len(), 30);
    }

    #[test]
    fn culinary_and_selftreatment_sizes() {
        assert_eq!(culinary(DomainScale::paper()).expected_dag_nodes, 10512);
        assert_eq!(
            self_treatment(DomainScale::paper()).expected_dag_nodes,
            2310
        );
    }

    #[test]
    fn small_scale_builds() {
        for d in [
            travel(DomainScale::small()),
            culinary(DomainScale::small()),
            self_treatment(DomainScale::small()),
        ] {
            assert!(d.ontology.vocab().num_elems() > 4, "{} too small", d.name);
            assert!(d.query.contains("SATISFYING"));
        }
    }

    #[test]
    fn class_tree_depth_is_logarithmic() {
        let mut b = OntologyBuilder::new();
        let names = class_tree(&mut b, "Root", "N", 40, 3);
        assert_eq!(names.len(), 40);
        let o = b.build().unwrap();
        let v = o.vocab();
        let root = v.elem_id("Root").unwrap();
        // every node reachable from root
        assert_eq!(v.elem_descendant_count(root), 40);
        // depth: walk longest chain
        fn depth(v: &crate::Vocabulary, e: crate::ElemId) -> usize {
            v.elem_children(e)
                .iter()
                .map(|&c| 1 + depth(v, c))
                .max()
                .unwrap_or(0)
        }
        let d = depth(v, root);
        assert!((3..=5).contains(&d), "depth {d}");
    }
}
