//! Ready-made ontologies: the paper's Figure 1, and deterministic
//! generators for the three evaluation domains of Section 6.3.

pub mod figure1;
mod gen;

pub use gen::{culinary, self_treatment, travel, DomainScale, GeneratedDomain};
