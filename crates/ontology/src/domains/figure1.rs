//! The sample NYC ontology of the paper's Figure 1, together with the
//! personal databases of Table 3 and the sample query of Figure 2.
//!
//! These are used throughout the test suite to check the worked examples
//! (2.3–2.7, 3.1, 3.2, 4.2, 4.6, 5.2) verbatim.

use crate::fact::FactSet;
use crate::store::{Ontology, OntologyBuilder};

/// The OASSIS-QL query of Figure 2: "Find popular combinations of an
/// activity in a child-friendly attraction in NYC and a restaurant nearby
/// (plus other relevant advice)".
pub const SAMPLE_QUERY: &str = r#"
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity.
  $z instanceOf Restaurant.
  $z nearBy $x
SATISFYING
  $y+ doAt $x.
  [] eatAt $z.
  MORE
WITH SUPPORT = 0.4
"#;

/// The grey-highlighted simplification used in Examples 4.2–4.6 and
/// Figure 3: the query without the nearby restaurant and without MORE.
pub const SIMPLE_QUERY: &str = r#"
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity
SATISFYING
  $y+ doAt $x
WITH SUPPORT = 0.4
"#;

/// Builds the Figure 1 ontology.
///
/// Notes on the reconstruction:
/// * `Feed a Monkey` is modelled as a subclass of `Activity` so that it is
///   reachable by the query's `subClassOf*` path, matching Figure 3 where
///   `(Bronx Zoo, Feed a Monkey)` is a valid assignment.
/// * `Boathouse` and `Rent Bikes` are interned in the vocabulary but carry
///   no universal facts, as observed in Example 2.4.
/// * `nearBy ≤R inside` per the annotation at the bottom of Figure 1.
pub fn ontology() -> Ontology {
    let mut b = OntologyBuilder::new();

    // Top of the taxonomy.
    b.subclass("Place", "Thing");
    b.subclass("Activity", "Thing");

    // Places.
    b.subclass("City", "Place");
    b.subclass("Restaurant", "Place");
    b.subclass("Attraction", "Place");
    b.subclass("Outdoor", "Attraction");
    b.subclass("Indoor", "Attraction");
    b.subclass("Zoo", "Outdoor");
    b.subclass("Park", "Outdoor");
    b.subclass("Swimming Pool", "Indoor");

    // Activities.
    b.subclass("Sport", "Activity");
    b.subclass("Food", "Activity");
    b.subclass("Feed a Monkey", "Activity");
    b.subclass("Water Sport", "Sport");
    b.subclass("Biking", "Sport");
    b.subclass("Ball Game", "Sport");
    b.subclass("Basketball", "Ball Game");
    b.subclass("Baseball", "Ball Game");
    b.subclass("Swimming", "Water Sport");
    b.subclass("Water Polo", "Water Sport");
    b.subclass("Falafel", "Food");
    b.subclass("Pasta", "Food");

    // Instances.
    b.instance("NYC", "City");
    b.instance("Maoz Veg", "Restaurant");
    b.instance("Pine", "Restaurant");
    b.instance("Central Park", "Park");
    b.instance("Madison Square", "Park");
    b.instance("Bronx Zoo", "Zoo");

    // Geography.
    b.fact("Central Park", "inside", "NYC");
    b.fact("Madison Square", "inside", "NYC");
    b.fact("Bronx Zoo", "inside", "NYC");
    b.fact("Maoz Veg", "nearBy", "Central Park");
    b.fact("Maoz Veg", "nearBy", "Madison Square");
    b.fact("Pine", "nearBy", "Bronx Zoo");
    b.rel_specializes("nearBy", "inside");

    // Labels.
    b.label("Central Park", "child-friendly");
    b.label("Bronx Zoo", "child-friendly");

    // Vocabulary-only terms appearing in personal histories.
    b.element("Boathouse");
    b.element("Rent Bikes");
    b.relation("doAt");
    b.relation("eatAt");

    b.build().expect("figure 1 ontology is acyclic")
}

/// The personal databases `D_u1` (six transactions) and `D_u2` (two
/// transactions) of Table 3.
pub fn personal_dbs(ont: &Ontology) -> [Vec<FactSet>; 2] {
    let v = ont.vocab();
    let f = |s: &str, r: &str, o: &str| {
        v.fact(s, r, o)
            .unwrap_or_else(|| panic!("missing term in {s} {r} {o}"))
    };
    let d_u1 = vec![
        // T1
        FactSet::from_iter([
            f("Basketball", "doAt", "Central Park"),
            f("Falafel", "eatAt", "Maoz Veg"),
        ]),
        // T2
        FactSet::from_iter([
            f("Feed a Monkey", "doAt", "Bronx Zoo"),
            f("Pasta", "eatAt", "Pine"),
        ]),
        // T3
        FactSet::from_iter([
            f("Biking", "doAt", "Central Park"),
            f("Rent Bikes", "doAt", "Boathouse"),
            f("Falafel", "eatAt", "Maoz Veg"),
        ]),
        // T4
        FactSet::from_iter([
            f("Baseball", "doAt", "Central Park"),
            f("Biking", "doAt", "Central Park"),
            f("Rent Bikes", "doAt", "Boathouse"),
            f("Falafel", "eatAt", "Maoz Veg"),
        ]),
        // T5
        FactSet::from_iter([
            f("Feed a Monkey", "doAt", "Bronx Zoo"),
            f("Pasta", "eatAt", "Pine"),
        ]),
        // T6
        FactSet::from_iter([f("Feed a Monkey", "doAt", "Bronx Zoo")]),
    ];
    let d_u2 = vec![
        // T7
        FactSet::from_iter([
            f("Baseball", "doAt", "Central Park"),
            f("Biking", "doAt", "Central Park"),
            f("Rent Bikes", "doAt", "Boathouse"),
            f("Falafel", "eatAt", "Maoz Veg"),
        ]),
        // T8
        FactSet::from_iter([
            f("Feed a Monkey", "doAt", "Bronx Zoo"),
            f("Pasta", "eatAt", "Pine"),
        ]),
    ];
    [d_u1, d_u2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_and_has_expected_structure() {
        let o = ontology();
        let v = o.vocab();
        assert!(v.elem_id("Central Park").is_some());
        let attraction = v.elem_id("Attraction").unwrap();
        let cp = v.elem_id("Central Park").unwrap();
        assert!(v.elem_leq(attraction, cp));
        let activity = v.elem_id("Activity").unwrap();
        let baseball = v.elem_id("Baseball").unwrap();
        assert!(v.elem_leq(activity, baseball));
        // nearBy ≤R inside: CP inside NYC implies CP nearBy NYC.
        assert!(o.implies(v.fact("Central Park", "nearBy", "NYC").unwrap()));
    }

    #[test]
    fn example_2_7_support() {
        // supp_u1({⟨Pasta, eatAt, Pine⟩, ⟨Activity, doAt, Bronx Zoo⟩}) = 2/6 = 1/3
        let o = ontology();
        let v = o.vocab();
        let [d_u1, _] = personal_dbs(&o);
        let a = FactSet::from_iter([
            v.fact("Pasta", "eatAt", "Pine").unwrap(),
            v.fact("Activity", "doAt", "Bronx Zoo").unwrap(),
        ]);
        let implied = d_u1.iter().filter(|t| a.leq(v, t)).count();
        assert_eq!(implied, 2); // T2 and T5
        assert_eq!(d_u1.len(), 6);
    }

    #[test]
    fn table_3_shapes() {
        let o = ontology();
        let [d1, d2] = personal_dbs(&o);
        assert_eq!(d1.len(), 6);
        assert_eq!(d2.len(), 2);
        assert_eq!(d1[3].len(), 4); // T4 has four facts
        assert_eq!(d2[1].len(), 2); // T8 has two facts
    }

    #[test]
    fn example_3_1_supports() {
        // φ16(A_SAT) = {Biking doAt CP, [anything] eatAt Maoz} — here we
        // check just the doAt part per the simplified (grey) query:
        // supp_u1(Biking doAt CP) = 2/6 = 1/3, supp_u2 = 1/2, avg = 5/12.
        let o = ontology();
        let v = o.vocab();
        let [d1, d2] = personal_dbs(&o);
        let biking = FactSet::from_iter([v.fact("Biking", "doAt", "Central Park").unwrap()]);
        let s1 = d1.iter().filter(|t| biking.leq(v, t)).count() as f64 / d1.len() as f64;
        let s2 = d2.iter().filter(|t| biking.leq(v, t)).count() as f64 / d2.len() as f64;
        assert!((s1 - 1.0 / 3.0).abs() < 1e-12);
        assert!((s2 - 0.5).abs() < 1e-12);
        assert!(((s1 + s2) / 2.0 - 5.0 / 12.0).abs() < 1e-12);
        // φ20 maps y to Baseball: avg(1/6, 1/2) = 1/3.
        let baseball = FactSet::from_iter([v.fact("Baseball", "doAt", "Central Park").unwrap()]);
        let s1 = d1.iter().filter(|t| baseball.leq(v, t)).count() as f64 / d1.len() as f64;
        let s2 = d2.iter().filter(|t| baseball.leq(v, t)).count() as f64 / d2.len() as f64;
        assert!(((s1 + s2) / 2.0 - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn example_3_2_more_fact_support() {
        // φ16 extended with MORE fact ⟨Rent Bikes, doAt, Boathouse⟩ is
        // implied by T3, T4 and T7 ⇒ average support 5/12.
        let o = ontology();
        let v = o.vocab();
        let [d1, d2] = personal_dbs(&o);
        let a = FactSet::from_iter([
            v.fact("Biking", "doAt", "Central Park").unwrap(),
            v.fact("Falafel", "eatAt", "Maoz Veg").unwrap(),
            v.fact("Rent Bikes", "doAt", "Boathouse").unwrap(),
        ]);
        let n1 = d1.iter().filter(|t| a.leq(v, t)).count();
        let n2 = d2.iter().filter(|t| a.leq(v, t)).count();
        assert_eq!((n1, n2), (2, 1)); // T3, T4 and T7
        let avg = (n1 as f64 / 6.0 + n2 as f64 / 2.0) / 2.0;
        assert!((avg - 5.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn madison_square_is_not_child_friendly() {
        let o = ontology();
        let v = o.vocab();
        let ms = v.elem_id("Madison Square").unwrap();
        assert!(!o.has_label(ms, "child-friendly"));
    }
}
