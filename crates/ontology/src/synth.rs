//! Random vocabulary/ontology generation, used by property tests and
//! micro-benchmarks.

use crate::store::{Ontology, OntologyBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`random_ontology`].
#[derive(Debug, Clone, Copy)]
pub struct SynthConfig {
    /// Number of elements (≥ 1); element 0 is the root.
    pub elems: usize,
    /// Number of non-built-in relations (≥ 1).
    pub rels: usize,
    /// Probability that an element gets a second parent (DAG, not tree).
    pub dag_prob: f64,
    /// Number of random non-taxonomy facts.
    pub facts: usize,
    /// RNG seed (everything is deterministic given the seed).
    pub seed: u64,
}

impl Default for SynthConfig {
    fn default() -> Self {
        SynthConfig {
            elems: 50,
            rels: 4,
            dag_prob: 0.1,
            facts: 40,
            seed: 0,
        }
    }
}

/// Generates a random ontology: a rooted element DAG connected by
/// `subClassOf`, a relation chain `r0 ≤R r1 ≤R …`, and random facts.
pub fn random_ontology(cfg: SynthConfig) -> Ontology {
    assert!(cfg.elems >= 1 && cfg.rels >= 1);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = OntologyBuilder::new();
    let name = |i: usize| format!("E{i}");
    b.element(&name(0));
    for i in 1..cfg.elems {
        let parent = rng.gen_range(0..i);
        b.subclass(&name(i), &name(parent));
        if rng.gen_bool(cfg.dag_prob) {
            let second = rng.gen_range(0..i);
            if second != parent {
                b.subclass(&name(i), &name(second));
            }
        }
    }
    let rel = |i: usize| format!("R{i}");
    b.relation(&rel(0));
    for i in 1..cfg.rels {
        // chain: R(i-1) is more general than R(i)
        b.rel_specializes(&rel(i - 1), &rel(i));
    }
    for _ in 0..cfg.facts {
        let s = rng.gen_range(0..cfg.elems);
        let o = rng.gen_range(0..cfg.elems);
        let r = rng.gen_range(0..cfg.rels);
        b.fact(&name(s), &rel(r), &name(o));
    }
    b.build()
        .expect("generated taxonomy is acyclic by construction")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = random_ontology(SynthConfig::default());
        let b = random_ontology(SynthConfig::default());
        assert_eq!(a.facts(), b.facts());
        assert_eq!(a.vocab().num_elems(), b.vocab().num_elems());
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_ontology(SynthConfig {
            seed: 1,
            ..Default::default()
        });
        let b = random_ontology(SynthConfig {
            seed: 2,
            ..Default::default()
        });
        assert_ne!(a.facts(), b.facts());
    }

    #[test]
    fn root_reaches_everything() {
        let o = random_ontology(SynthConfig {
            elems: 200,
            ..Default::default()
        });
        let v = o.vocab();
        let root = v.elem_id("E0").unwrap();
        assert_eq!(v.elem_descendant_count(root), 200);
    }

    #[test]
    fn relation_chain_is_ordered() {
        let o = random_ontology(SynthConfig {
            rels: 5,
            ..Default::default()
        });
        let v = o.vocab();
        let r0 = v.rel_id("R0").unwrap();
        let r4 = v.rel_id("R4").unwrap();
        assert!(v.rel_leq(r0, r4));
        assert!(!v.rel_leq(r4, r0));
    }

    #[test]
    fn leq_partial_order_laws_on_random_instance() {
        // reflexivity + transitivity + antisymmetry spot-check
        let o = random_ontology(SynthConfig {
            elems: 60,
            dag_prob: 0.3,
            seed: 7,
            ..Default::default()
        });
        let v = o.vocab();
        for a in v.elems() {
            assert!(v.elem_leq(a, a));
        }
        for a in v.elems() {
            for b in v.elems() {
                if a != b && v.elem_leq(a, b) {
                    assert!(!v.elem_leq(b, a), "antisymmetry violated");
                }
                for c in v.elems() {
                    if v.elem_leq(a, b) && v.elem_leq(b, c) {
                        assert!(v.elem_leq(a, c), "transitivity violated");
                    }
                }
            }
        }
    }
}
