//! # ontology — vocabularies, semantic partial orders, facts and ontologies
//!
//! This crate implements the *general knowledge* half of the OASSIS model
//! (Amsterdamer, Davidson, Milo, Novgorodov, Somech: "OASSIS: Query Driven
//! Crowd Mining", SIGMOD 2014, Section 2):
//!
//! * [`Vocabulary`] — a tuple `(E, ≤E, R, ≤R)` of element and relation names
//!   together with two partial orders (Definition 2.1). Following the paper,
//!   the orders are *semantically reversed subsumption*: `Sport ≤E Biking`
//!   because biking **is a** sport — the more **general** term is the
//!   **smaller** one.
//! * [`Fact`] / [`FactSet`] — triples `⟨e1, r, e2⟩` over the vocabulary and
//!   sets thereof (Definition 2.2), with the derived partial order of
//!   Definition 2.5 ([`Vocabulary::fact_leq`], [`FactSet::leq`]).
//! * [`Ontology`] — a distinguished fact-set of *universal* facts ("Central
//!   Park inside NYC") plus indexes used by query evaluation, built with
//!   [`OntologyBuilder`]. Relations such as `subClassOf` / `instanceOf` can be
//!   declared [*order-defining*](OntologyBuilder::order_relation) so that the
//!   corresponding facts also populate `≤E`, exactly as in the paper's
//!   Example 2.3.
//! * [`domains`] — the paper's Figure 1 ontology, plus deterministic
//!   generators for the three evaluation domains of Section 6.3 (travel,
//!   culinary, self-treatment).
//! * [`synth`] — random vocabulary/ontology generation for the synthetic
//!   experiments of Section 6.4.
//!
//! All names are interned to dense `u32` ids ([`ElemId`], [`RelId`]); order
//! reachability is answered in O(1) from transitive-closure bitsets computed
//! once when the vocabulary is frozen.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

mod bitmat;
mod error;
mod fact;
mod ids;
mod pattern;
mod snapshot;
mod store;
mod vocab;

pub mod domains;
pub mod json;
pub mod synth;

pub use bitmat::BitMatrix;
pub use error::OntologyError;
pub use fact::{Fact, FactSet};
pub use ids::{ElemId, RelId};
pub use pattern::{PatternFact, PatternSet};
pub use snapshot::{semantically_equal, OntologySnapshot, SnapshotError};
pub use store::{Ontology, OntologyBuilder};
pub use vocab::{Vocabulary, VocabularyBuilder};
