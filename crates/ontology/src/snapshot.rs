//! JSON import/export of ontologies.
//!
//! The paper's prototype keeps its ontology "in RDF format" on disk; this
//! module provides the equivalent persistence for the reproduction: a
//! self-contained, versioned snapshot that round-trips the vocabulary
//! (names + both order relations), the universal facts and the labels.

use crate::fact::FactSet;
use crate::ids::{ElemId, RelId};
use crate::json::{self, Json, JsonError};
use crate::store::{Ontology, OntologyBuilder};
use crate::OntologyError;

/// A serializable snapshot of an [`Ontology`].
#[derive(Debug, Clone, PartialEq)]
pub struct OntologySnapshot {
    /// Format version (currently 1).
    pub version: u32,
    /// Element names, in id order.
    pub elements: Vec<String>,
    /// Relation names, in id order.
    pub relations: Vec<String>,
    /// Immediate `≤E` edges as `(general, specific)` element ids.
    pub elem_edges: Vec<(u32, u32)>,
    /// Immediate `≤R` edges as `(general, specific)` relation ids.
    pub rel_edges: Vec<(u32, u32)>,
    /// Universal facts as `(subject, relation, object)` ids.
    pub facts: Vec<(u32, u32, u32)>,
    /// Element labels.
    pub labels: Vec<(u32, String)>,
}

/// Errors raised when restoring a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// The JSON was malformed.
    Json(JsonError),
    /// An id in the snapshot is out of range.
    BadId(u32),
    /// The reconstructed orders are cyclic (corrupt snapshot).
    Ontology(OntologyError),
    /// Unsupported snapshot version.
    Version(u32),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Json(e) => write!(f, "malformed snapshot JSON: {e}"),
            SnapshotError::BadId(id) => write!(f, "snapshot id {id} out of range"),
            SnapshotError::Ontology(e) => write!(f, "corrupt snapshot: {e}"),
            SnapshotError::Version(v) => write!(f, "unsupported snapshot version {v}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl Ontology {
    /// Captures a self-contained snapshot.
    pub fn snapshot(&self) -> OntologySnapshot {
        let v = self.vocab();
        let elements: Vec<String> = v.elems().map(|e| v.elem_name(e).to_owned()).collect();
        let relations: Vec<String> = v.rels().map(|r| v.rel_name(r).to_owned()).collect();
        let mut elem_edges = Vec::new();
        for e in v.elems() {
            for &c in v.elem_children(e) {
                elem_edges.push((e.0, c.0));
            }
        }
        let mut rel_edges = Vec::new();
        for r in v.rels() {
            for &c in v.rel_children(r) {
                rel_edges.push((r.0, c.0));
            }
        }
        let facts: Vec<(u32, u32, u32)> = self
            .facts()
            .iter()
            .map(|f| (f.subject.0, f.rel.0, f.object.0))
            .collect();
        let mut labels = Vec::new();
        for e in v.elems() {
            for l in self.labels_of(e) {
                labels.push((e.0, l.to_owned()));
            }
        }
        OntologySnapshot {
            version: 1,
            elements,
            relations,
            elem_edges,
            rel_edges,
            facts,
            labels,
        }
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        self.snapshot().to_json().to_string()
    }

    /// Restores an ontology from a snapshot. Element/relation ids are
    /// re-interned in order, so ids remain stable across the round trip.
    pub fn from_snapshot(s: &OntologySnapshot) -> Result<Ontology, SnapshotError> {
        if s.version != 1 {
            return Err(SnapshotError::Version(s.version));
        }
        let ne = s.elements.len() as u32;
        let nr = s.relations.len() as u32;
        let check_e = |id: u32| {
            if id < ne {
                Ok(())
            } else {
                Err(SnapshotError::BadId(id))
            }
        };
        let check_r = |id: u32| {
            if id < nr {
                Ok(())
            } else {
                Err(SnapshotError::BadId(id))
            }
        };

        let mut b = OntologyBuilder::new();
        // Relation ids 0/1 are subClassOf/instanceOf in builder order; a
        // snapshot from this crate has the same layout, but re-intern by
        // name to stay robust against foreign snapshots.
        let rel_ids: Vec<RelId> = s.relations.iter().map(|n| b.relation(n)).collect();
        let elem_ids: Vec<ElemId> = s.elements.iter().map(|n| b.element(n)).collect();
        for &(g, sp) in &s.elem_edges {
            check_e(g)?;
            check_e(sp)?;
            b.vocab_mut()
                .elem_edge(elem_ids[g as usize], elem_ids[sp as usize]);
        }
        for &(g, sp) in &s.rel_edges {
            check_r(g)?;
            check_r(sp)?;
            b.vocab_mut()
                .rel_edge(rel_ids[g as usize], rel_ids[sp as usize]);
        }
        for &(su, r, o) in &s.facts {
            check_e(su)?;
            check_r(r)?;
            check_e(o)?;
            // edges were captured explicitly, so bypass the builder's
            // order-defining fact handling by adding raw facts
            b.raw_fact(
                elem_ids[su as usize],
                rel_ids[r as usize],
                elem_ids[o as usize],
            );
        }
        for (e, l) in &s.labels {
            check_e(*e)?;
            b.label_id(elem_ids[*e as usize], l);
        }
        b.build().map_err(SnapshotError::Ontology)
    }

    /// Restores from JSON.
    pub fn from_json(json: &str) -> Result<Ontology, SnapshotError> {
        let snapshot = OntologySnapshot::from_json(json).map_err(SnapshotError::Json)?;
        Ontology::from_snapshot(&snapshot)
    }
}

impl OntologySnapshot {
    /// The snapshot as a JSON value.
    pub fn to_json(&self) -> Json {
        let pair = |&(a, b): &(u32, u32)| Json::Arr(vec![Json::Num(a as f64), Json::Num(b as f64)]);
        Json::Obj(vec![
            ("version".into(), Json::Num(self.version as f64)),
            (
                "elements".into(),
                Json::Arr(self.elements.iter().map(|s| Json::Str(s.clone())).collect()),
            ),
            (
                "relations".into(),
                Json::Arr(
                    self.relations
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
            (
                "elem_edges".into(),
                Json::Arr(self.elem_edges.iter().map(pair).collect()),
            ),
            (
                "rel_edges".into(),
                Json::Arr(self.rel_edges.iter().map(pair).collect()),
            ),
            (
                "facts".into(),
                Json::Arr(
                    self.facts
                        .iter()
                        .map(|&(s, r, o)| {
                            Json::Arr(vec![
                                Json::Num(s as f64),
                                Json::Num(r as f64),
                                Json::Num(o as f64),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "labels".into(),
                Json::Arr(
                    self.labels
                        .iter()
                        .map(|(e, l)| Json::Arr(vec![Json::Num(*e as f64), Json::Str(l.clone())]))
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses a snapshot from JSON text.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let doc = json::parse(text)?;
        let strings = |v: &Json| -> Result<Vec<String>, JsonError> {
            v.as_arr()?
                .iter()
                .map(|s| s.as_str().map(str::to_owned))
                .collect()
        };
        let pairs = |v: &Json| -> Result<Vec<(u32, u32)>, JsonError> {
            v.as_arr()?
                .iter()
                .map(|p| {
                    let p = p.as_arr()?;
                    match p {
                        [a, b] => Ok((a.as_u32()?, b.as_u32()?)),
                        _ => Err(JsonError::shape("expected a [u32, u32] pair")),
                    }
                })
                .collect()
        };
        let facts = doc
            .field("facts")?
            .as_arr()?
            .iter()
            .map(|t| {
                let t = t.as_arr()?;
                match t {
                    [s, r, o] => Ok((s.as_u32()?, r.as_u32()?, o.as_u32()?)),
                    _ => Err(JsonError::shape("expected a [u32, u32, u32] triple")),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        let labels = doc
            .field("labels")?
            .as_arr()?
            .iter()
            .map(|t| {
                let t = t.as_arr()?;
                match t {
                    [e, l] => Ok((e.as_u32()?, l.as_str()?.to_owned())),
                    _ => Err(JsonError::shape("expected a [u32, string] pair")),
                }
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(OntologySnapshot {
            version: doc.field("version")?.as_u32()?,
            elements: strings(doc.field("elements")?)?,
            relations: strings(doc.field("relations")?)?,
            elem_edges: pairs(doc.field("elem_edges")?)?,
            rel_edges: pairs(doc.field("rel_edges")?)?,
            facts,
            labels,
        })
    }
}

/// Helper used by the round trip to compare semantics, not representation.
pub fn semantically_equal(a: &Ontology, b: &Ontology) -> bool {
    let (va, vb) = (a.vocab(), b.vocab());
    if va.num_elems() != vb.num_elems() || va.num_rels() != vb.num_rels() {
        return false;
    }
    for e in va.elems() {
        if va.elem_name(e) != vb.elem_name(e) {
            return false;
        }
    }
    for e in va.elems() {
        for f in va.elems() {
            if va.elem_leq(e, f) != vb.elem_leq(e, f) {
                return false;
            }
        }
    }
    let fa: FactSet = a.facts().clone();
    let fb: FactSet = b.facts().clone();
    fa == fb
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::figure1;
    use crate::synth::{random_ontology, SynthConfig};

    #[test]
    fn figure1_roundtrips() {
        let ont = figure1::ontology();
        let json = ont.to_json();
        let back = Ontology::from_json(&json).unwrap();
        assert!(semantically_equal(&ont, &back));
        // labels survive
        let cp = back.vocab().elem_id("Central Park").unwrap();
        assert!(back.has_label(cp, "child-friendly"));
        // vocabulary-only elements survive
        assert!(back.vocab().elem_id("Boathouse").is_some());
        // implication still works (nearBy ≤R inside)
        let f = back.vocab().fact("Central Park", "nearBy", "NYC").unwrap();
        assert!(back.implies(f));
    }

    #[test]
    fn random_ontologies_roundtrip() {
        for seed in 0..5 {
            let ont = random_ontology(SynthConfig {
                seed,
                elems: 80,
                ..Default::default()
            });
            let back = Ontology::from_json(&ont.to_json()).unwrap();
            assert!(semantically_equal(&ont, &back), "seed {seed}");
        }
    }

    #[test]
    fn bad_ids_are_rejected() {
        let ont = figure1::ontology();
        let mut snap = ont.snapshot();
        snap.facts.push((9999, 0, 0));
        assert!(matches!(
            Ontology::from_snapshot(&snap),
            Err(SnapshotError::BadId(9999))
        ));
    }

    #[test]
    fn wrong_version_is_rejected() {
        let ont = figure1::ontology();
        let mut snap = ont.snapshot();
        snap.version = 2;
        assert!(matches!(
            Ontology::from_snapshot(&snap),
            Err(SnapshotError::Version(2))
        ));
    }

    #[test]
    fn malformed_json_is_rejected() {
        assert!(matches!(
            Ontology::from_json("{not json"),
            Err(SnapshotError::Json(_))
        ));
    }

    #[test]
    fn corrupt_cycle_is_rejected() {
        let ont = figure1::ontology();
        let mut snap = ont.snapshot();
        // add a back edge creating a ≤E cycle
        let (g, s) = snap.elem_edges[0];
        snap.elem_edges.push((s, g));
        assert!(matches!(
            Ontology::from_snapshot(&snap),
            Err(SnapshotError::Ontology(OntologyError::ElementCycle { .. }))
        ));
    }
}
