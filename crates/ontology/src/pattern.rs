//! Fact *patterns*: facts whose components may be existential wildcards.
//!
//! The `[]` term of OASSIS-QL ("anything, as long as one exists" —
//! Section 3) survives into the mined patterns: applying an assignment to
//! the meta-fact `[] eatAt $z` yields a pattern fact with a wildcard
//! subject. Pattern-sets therefore generalize [`FactSet`]s, and the order
//! of Definition 2.5 extends pointwise with wildcards accepting any
//! component.

use crate::fact::{Fact, FactSet};
use crate::ids::{ElemId, RelId};
use crate::vocab::Vocabulary;

/// A fact whose components may be wildcards (`None`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatternFact {
    /// Subject, or `None` for `[]`.
    pub subject: Option<ElemId>,
    /// Relation, or `None` for a wildcard relation.
    pub rel: Option<RelId>,
    /// Object, or `None` for `[]`.
    pub object: Option<ElemId>,
}

impl PatternFact {
    /// A fully concrete pattern.
    pub fn from_fact(f: Fact) -> Self {
        PatternFact {
            subject: Some(f.subject),
            rel: Some(f.rel),
            object: Some(f.object),
        }
    }

    /// The concrete fact, if no component is a wildcard.
    pub fn to_fact(self) -> Option<Fact> {
        Some(Fact::new(self.subject?, self.rel?, self.object?))
    }

    /// Whether this pattern is ≤ the concrete fact `g` (wildcards accept
    /// anything; concrete components use the orders of Definition 2.5).
    pub fn leq_fact(&self, vocab: &Vocabulary, g: Fact) -> bool {
        self.subject.is_none_or(|s| vocab.elem_leq(s, g.subject))
            && self.rel.is_none_or(|r| vocab.rel_leq(r, g.rel))
            && self.object.is_none_or(|o| vocab.elem_leq(o, g.object))
    }

    /// Pattern-to-pattern order: `self ≤ other` iff every concrete
    /// component of `self` is ≤ the corresponding component of `other`
    /// (a wildcard in `self` accepts anything; a wildcard in `other` is
    /// only ≥ a wildcard).
    pub fn leq(&self, vocab: &Vocabulary, other: &PatternFact) -> bool {
        let elem_ok = |a: Option<ElemId>, b: Option<ElemId>| match (a, b) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(x), Some(y)) => vocab.elem_leq(x, y),
        };
        let rel_ok = |a: Option<RelId>, b: Option<RelId>| match (a, b) {
            (None, _) => true,
            (Some(_), None) => false,
            (Some(x), Some(y)) => vocab.rel_leq(x, y),
        };
        elem_ok(self.subject, other.subject)
            && rel_ok(self.rel, other.rel)
            && elem_ok(self.object, other.object)
    }

    /// Renders the pattern, wildcards as `[]`.
    pub fn to_display(&self, vocab: &Vocabulary) -> String {
        let s = self
            .subject
            .map_or("[]".to_owned(), |e| vocab.elem_name(e).to_owned());
        let r = self
            .rel
            .map_or("[]".to_owned(), |r| vocab.rel_name(r).to_owned());
        let o = self
            .object
            .map_or("[]".to_owned(), |e| vocab.elem_name(e).to_owned());
        format!("{s} {r} {o}")
    }
}

/// A canonical (sorted, deduplicated) set of pattern facts — the unit the
/// crowd is asked about.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatternSet(Vec<PatternFact>);

impl PatternSet {
    /// The empty pattern-set (implied by every transaction).
    pub fn new() -> Self {
        PatternSet(Vec::new())
    }

    /// Builds from an iterator, canonicalizing.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I: IntoIterator<Item = PatternFact>>(iter: I) -> Self {
        let mut v: Vec<PatternFact> = iter.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        PatternSet(v)
    }

    /// Builds from concrete facts.
    pub fn from_facts<I: IntoIterator<Item = Fact>>(iter: I) -> Self {
        Self::from_iter(iter.into_iter().map(PatternFact::from_fact))
    }

    /// Inserts a pattern fact; returns whether it was new.
    pub fn insert(&mut self, p: PatternFact) -> bool {
        match self.0.binary_search(&p) {
            Ok(_) => false,
            Err(pos) => {
                self.0.insert(pos, p);
                true
            }
        }
    }

    /// Number of pattern facts.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterates in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = &PatternFact> + '_ {
        self.0.iter()
    }

    /// Whether the transaction `t` implies (supports) this pattern-set:
    /// every pattern fact is ≤ some fact of `t`.
    pub fn supported_by(&self, vocab: &Vocabulary, t: &FactSet) -> bool {
        self.0
            .iter()
            .all(|p| t.iter().any(|g| p.leq_fact(vocab, g)))
    }

    /// Pattern-set order (extends Definition 2.5): `self ≤ other` iff each
    /// pattern of `self` is ≤ some pattern of `other`.
    pub fn leq(&self, vocab: &Vocabulary, other: &PatternSet) -> bool {
        self.0
            .iter()
            .all(|p| other.0.iter().any(|q| p.leq(vocab, q)))
    }

    /// Renders in the paper's dotted notation.
    pub fn to_display(&self, vocab: &Vocabulary) -> String {
        self.0
            .iter()
            .map(|p| p.to_display(vocab))
            .collect::<Vec<_>>()
            .join(". ")
    }
}

impl FromIterator<PatternFact> for PatternSet {
    fn from_iter<I: IntoIterator<Item = PatternFact>>(iter: I) -> Self {
        PatternSet::from_iter(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::figure1;

    #[test]
    fn wildcard_subject_matches_anything() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let t = FactSet::from_iter([
            v.fact("Falafel", "eatAt", "Maoz Veg").unwrap(),
            v.fact("Biking", "doAt", "Central Park").unwrap(),
        ]);
        // [] eatAt Maoz Veg
        let p = PatternFact {
            subject: None,
            rel: v.rel_id("eatAt"),
            object: v.elem_id("Maoz Veg"),
        };
        assert!(PatternSet::from_iter([p]).supported_by(v, &t));
        // [] eatAt Pine — not supported
        let q = PatternFact {
            subject: None,
            rel: v.rel_id("eatAt"),
            object: v.elem_id("Pine"),
        };
        assert!(!PatternSet::from_iter([q]).supported_by(v, &t));
    }

    #[test]
    fn concrete_patterns_agree_with_factset_order() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let t = FactSet::from_iter([v.fact("Basketball", "doAt", "Central Park").unwrap()]);
        let general = PatternSet::from_facts([v.fact("Sport", "doAt", "Central Park").unwrap()]);
        assert!(general.supported_by(v, &t));
        let wrong = PatternSet::from_facts([v.fact("Biking", "doAt", "Central Park").unwrap()]);
        assert!(!wrong.supported_by(v, &t));
    }

    #[test]
    fn pattern_order_with_wildcards() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let concrete = PatternFact::from_fact(v.fact("Biking", "doAt", "Central Park").unwrap());
        let wild = PatternFact {
            subject: None,
            rel: v.rel_id("doAt"),
            object: v.elem_id("Central Park"),
        };
        assert!(wild.leq(v, &concrete)); // wildcard is more general
        assert!(!concrete.leq(v, &wild));
        let generalized = PatternFact::from_fact(v.fact("Sport", "doAt", "Central Park").unwrap());
        assert!(generalized.leq(v, &concrete));
    }

    #[test]
    fn empty_patternset_is_bottom() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let empty = PatternSet::new();
        let t = FactSet::new();
        assert!(empty.supported_by(v, &t));
        let some = PatternSet::from_facts([v.fact("Biking", "doAt", "Central Park").unwrap()]);
        assert!(empty.leq(v, &some));
        assert!(!some.leq(v, &empty));
    }

    #[test]
    fn roundtrip_to_fact() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let f = v.fact("Biking", "doAt", "Central Park").unwrap();
        assert_eq!(PatternFact::from_fact(f).to_fact(), Some(f));
        let wild = PatternFact {
            subject: None,
            rel: v.rel_id("doAt"),
            object: None,
        };
        assert_eq!(wild.to_fact(), None);
    }

    #[test]
    fn display_uses_brackets_for_wildcards() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let p = PatternFact {
            subject: None,
            rel: v.rel_id("eatAt"),
            object: v.elem_id("Pine"),
        };
        assert_eq!(p.to_display(v), "[] eatAt Pine");
    }
}
