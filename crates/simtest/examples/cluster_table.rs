//! Prints the shard-count × fault-class table recorded in
//! EXPERIMENTS.md: rounds, questions, merge ops, net ticks and wall
//! clock for seed 0 under one representative schedule per fault class.
//!
//! Run with `cargo run --release -p simtest --example cluster_table`.

use simtest::{run_cluster, ClusterConfig, Schedule, ShardMap, CLUSTER_MEMBERS};
use std::time::Instant;

fn main() {
    println!("| N | fault class | schedule | rounds | questions | merge ops | net ticks | wall |");
    println!("|---|---|---|---|---|---|---|---|");
    for shards in [1u32, 2, 4, 8] {
        let coord = shards; // coordinator index in partition tokens
        let classes: [(&str, String); 5] = [
            ("fault-free", "ok".into()),
            ("partition", format!("p0|{coord}@2(6)")),
            ("crash+restart", "k0@3(6)".into()),
            ("permanent kill", "k0@4".into()),
            ("member faults", "d0@0,a1@0(6),c1@3,y0@2(9)".into()),
        ];
        for (class, line) in classes {
            let cfg = ClusterConfig::from_seed(0, shards);
            let map = ShardMap::round_robin(CLUSTER_MEMBERS, shards);
            let schedule = Schedule::parse(&line).expect("valid schedule line");
            let t0 = Instant::now();
            let run = run_cluster(&cfg, &map, &schedule, &telemetry::Telemetry::off())
                .expect("run must not panic");
            let wall = t0.elapsed();
            println!(
                "| {shards} | {class} | `{line}` | {} | {} | {} | {} | {:.1?} |",
                run.rounds, run.questions, run.merge_ops, run.net.ticks, wall
            );
        }
    }
}
