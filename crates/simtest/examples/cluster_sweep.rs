fn main() {
    let mut failed = 0;
    for seed in 0..30u64 {
        for shards in [1u32, 2, 4, 8] {
            let r = simtest::run_cluster_seed(seed, shards);
            if !r.passed() {
                failed += 1;
                println!(
                    "FAIL seed={seed} N={shards}: {:?} under {}",
                    r.failures,
                    r.schedule.to_line()
                );
            }
        }
    }
    println!("sweep done, {failed} failures");
}
