//! Fast simulation smoke corpus (CI on every push, < 60 s).
//!
//! A fixed range of seeds drives the full property harness: fault-free
//! differential oracles across all four engines and pool widths,
//! graceful degradation under generated fault schedules, budget
//! respect, and bit-identical replay. Any failure is shrunk to a
//! one-line replayable schedule before being reported. The nightly job
//! widens the corpus via the `SIM_SEEDS` environment variable.

use simtest::{record_seed_trace, run_corpus, run_seed, run_with_schedule, Schedule, SimConfig};

/// Seed range: `0..SIM_SEEDS` (default 12 — sized for the push-CI
/// budget).
fn corpus_size() -> u64 {
    std::env::var("SIM_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12)
}

#[test]
fn seed_corpus_upholds_all_simulation_properties() {
    let failures = run_corpus(0..corpus_size());
    assert!(
        failures.is_empty(),
        "failing seeds (schedules already shrunk):\n{}",
        failures
            .iter()
            .map(|r| format!(
                "  seed {} schedule `{}`: {}",
                r.seed,
                r.schedule.to_line(),
                r.failures.join("; ")
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn same_seed_reproduces_bit_identical_digests() {
    for seed in [1u64, 5, 9] {
        let a = run_seed(seed);
        let b = run_seed(seed);
        assert_eq!(a.digest, b.digest, "seed {seed} digest drifted");
        assert_eq!(a.schedule, b.schedule, "seed {seed} schedule drifted");
    }
}

#[test]
fn heavy_fault_load_degrades_gracefully() {
    // A hand-built worst case: every member hit at tick 0 by every fault
    // class, plus a dense generated schedule on top.
    let mut cfg = SimConfig::from_seed(99);
    cfg.budget = Some(400);
    let mut schedule = Schedule::parse("x2@0,a1@0(6),d0@0,d0@1,y0@2(9),c1@3,d1@4").unwrap();
    schedule
        .events
        .extend(Schedule::generate(123, 3, 30, 8).events);
    schedule.events.sort_by_key(|e| (e.at, e.member));
    let report = run_with_schedule(&cfg, &schedule);
    assert!(
        report.passed(),
        "heavy schedule `{}` violated: {}",
        schedule.to_line(),
        report.failures.join("; ")
    );
}

/// Records one faulty multi-user run with a live telemetry sink, checks
/// the trace is well-formed and replayable, and writes it as a JSONL
/// artifact (CI uploads it; `SIM_TRACE_OUT` overrides the location).
#[test]
fn recorded_fault_trace_is_deterministic_and_lands_on_disk() {
    let sink = record_seed_trace(5, 2);
    let events = sink.events();
    assert!(!events.is_empty(), "recording run produced no trace events");
    // the engine root span is present and ticks never go backwards
    let mut last_tick = 0u64;
    let mut saw_root = false;
    for e in &events {
        assert!(e.tick() >= last_tick, "tick went backwards at {e:?}");
        last_tick = e.tick();
        if let telemetry::TraceEvent::SpanStart { name, .. } = e {
            saw_root |= name == "mine.multi";
        }
    }
    assert!(saw_root, "missing mine.multi root span");
    assert!(sink.counter("sim.asks") > 0, "no simulated asks counted");

    // bit-identical replay of the recorded trace
    let again = record_seed_trace(5, 2);
    assert_eq!(sink.to_jsonl(), again.to_jsonl(), "recorded trace drifted");

    // pool width must not perturb the recorded trace either
    let wide = record_seed_trace(5, 8);
    assert_eq!(
        sink.to_jsonl(),
        wide.to_jsonl(),
        "trace depends on pool width"
    );

    let path = std::env::var("SIM_TRACE_OUT")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|_| {
            std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("sim-trace.jsonl")
        });
    sink.write_jsonl(&path).expect("trace artifact written");
}

#[test]
fn replay_line_reproduces_the_exact_report() {
    let cfg = SimConfig::from_seed(3);
    let line = cfg.schedule.to_line();
    let replayed = Schedule::parse(&line).unwrap();
    let a = run_with_schedule(&cfg, &cfg.schedule);
    let b = run_with_schedule(&cfg, &replayed);
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.failures, b.failures);
}
