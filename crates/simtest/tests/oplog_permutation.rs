//! The headline op-log oracle: replaying ANY permutation of a run's
//! answer-operation log reproduces the round-driven engines' six golden
//! digests bit-identically.
//!
//! The six goldens are the committed `current` digests of
//! `BENCH_speed.json` — E1_travel, E2_culinary, E3_self_treatment at
//! paper scale through the multi-user engine, and the three Figure-5
//! strategies (vertical, horizontal, naive) over the planted synthetic
//! workload. For each workload the test:
//!
//! 1. runs the round-driven engine exactly as `bench_speed` does and
//!    checks its digest against the committed golden (so the harness
//!    can never silently drift off the benchmark's workload);
//! 2. replays the run's op log in canonical order and checks the replay
//!    digest equals the same golden;
//! 3. replays `OPLOG_PERMS` (default 12; the nightly matrix widens it)
//!    random permutations of the log and checks every one.

use bench::{bind_domain, domain_crowd, paper_aggregator};
use oassis_core::synth::{plant_msps, synthetic_domain, MspDistribution, PlantedOracle};
use oassis_core::{
    run_horizontal, run_multi, run_naive, run_vertical, Dag, FixedSampleAggregator, MiningConfig,
};
use oassis_ql::{bind, evaluate_where, evaluate_where_pool, parse, MatchMode};
use ontology::domains::{culinary, self_treatment, travel, DomainScale};
use simtest::permute::{
    domain_replay_digest, fig5_fold, fnv_usize, permutation_count, shuffled, FNV_OFFSET,
};

/// Reads the committed golden digest of `workload` from the repo's
/// `BENCH_speed.json` (the `current` section; `baseline` and `current`
/// digests are identical by the bench's own outcome gate).
fn golden(workload: &str) -> u64 {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_speed.json");
    let text = std::fs::read_to_string(path).expect("BENCH_speed.json is committed");
    let key = format!("\"{workload}\"");
    let at = text
        .find(&key)
        .unwrap_or_else(|| panic!("{workload} missing from BENCH_speed.json"));
    let tail = &text[at..];
    let d = tail
        .find("\"digest\"")
        .unwrap_or_else(|| panic!("{workload} has no digest field"));
    let hex = tail[d..]
        .split('"')
        .nth(3)
        .unwrap_or_else(|| panic!("{workload} digest is malformed"));
    u64::from_str_radix(hex, 16).unwrap_or_else(|_| panic!("{workload} digest `{hex}` not hex"))
}

#[test]
fn e_domain_permutations_reproduce_the_golden_digests() {
    let domains = [
        ("E1_travel", travel(DomainScale::paper()), 12usize),
        ("E2_culinary", culinary(DomainScale::paper()), 10),
        ("E3_self_treatment", self_treatment(DomainScale::paper()), 6),
    ];
    let pool = minipool::Pool::sequential();
    let tele = telemetry::Telemetry::off();
    let agg = paper_aggregator();
    for (name, domain, habits) in domains {
        let expected = golden(name);
        let bound = bind_domain(&domain);
        let base = evaluate_where_pool(&bound, &domain.ontology, MatchMode::Exact, &pool);
        let mut dag = Dag::new(&bound, domain.ontology.vocab(), &base);
        let crowd = domain_crowd(&domain, domain.ontology.vocab(), 248, habits, 7);
        let mut cache = oassis_core::CrowdCache::new();
        let mut caching = oassis_core::CachingCrowd::new(crowd, &mut cache);
        let cfg = MiningConfig {
            threshold: Some(0.2),
            specialization_ratio: 0.12,
            seed: 7,
            ..Default::default()
        };
        let out = run_multi(&mut dag, &mut caching, &agg, &cfg);

        // the round-driven run itself must sit on the golden — otherwise
        // the harness drifted off the benchmark workload
        let mut run_digest = FNV_OFFSET;
        fnv_usize(&mut run_digest, out.mining.questions);
        fnv_usize(&mut run_digest, out.mining.msps.len());
        fnv_usize(&mut run_digest, out.mining.valid_msps.len());
        fnv_usize(&mut run_digest, out.undecided);
        fnv_usize(&mut run_digest, out.mining.total_valid);
        fnv_usize(&mut run_digest, out.mining.nodes_materialized);
        fnv_usize(&mut run_digest, usize::from(out.mining.complete));
        for e in &out.mining.events {
            fnv_usize(&mut run_digest, e.question);
            simtest::permute::fnv(&mut run_digest, format!("{:?}", e.kind).as_bytes());
        }
        assert_eq!(
            run_digest, expected,
            "{name}: round-driven digest is off the committed golden"
        );

        let canonical = out.mining.ops.replay(&dag, &agg, &pool, &tele);
        assert_eq!(
            domain_replay_digest(&canonical),
            expected,
            "{name}: canonical replay digest diverged from the golden"
        );
        for perm in 0..permutation_count() {
            let replay = shuffled(&out.mining.ops, perm).replay(&dag, &agg, &pool, &tele);
            assert_eq!(
                domain_replay_digest(&replay),
                expected,
                "{name}: permutation {perm} diverged from the golden digest"
            );
        }
    }
}

#[test]
fn fig5_strategy_permutations_reproduce_the_golden_digests() {
    let d = synthetic_domain(500, 7, 0);
    let q = parse(&d.query).unwrap();
    let b = bind(&q, &d.ontology).unwrap();
    let base = evaluate_where(&b, &d.ontology, MatchMode::Exact);
    let mut full = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
    let total = full.materialize_all();
    let agg = FixedSampleAggregator { sample_size: 1 };
    let pool = minipool::Pool::sequential();
    let tele = telemetry::Telemetry::off();

    for (name, algo) in [
        ("fig5_vertical", 0usize),
        ("fig5_horizontal", 1),
        ("fig5_naive", 2),
    ] {
        let expected = golden(name);
        // one run per trial, kept with its post-run DAG for replay
        let mut trials = Vec::new();
        for trial in 0..3u64 {
            let n_msps = total * 5 / 100;
            let planted = plant_msps(
                &mut full,
                n_msps,
                true,
                MspDistribution::Uniform,
                5000 + trial,
            );
            let patterns: Vec<_> = planted
                .iter()
                .map(|&id| full.node(id).assignment.apply(&b))
                .collect();
            let mut dag = Dag::new(&b, d.ontology.vocab(), &base).without_multiplicities();
            let mut oracle = PlantedOracle::new(d.ontology.vocab(), patterns, 1, trial);
            let cfg = MiningConfig {
                seed: trial,
                ..Default::default()
            };
            let run = match algo {
                0 => run_vertical(&mut dag, &mut oracle, crowd::MemberId(0), &cfg),
                1 => {
                    dag.materialize_all();
                    run_horizontal(&mut dag, &mut oracle, crowd::MemberId(0), &cfg)
                }
                _ => {
                    dag.materialize_all();
                    run_naive(&mut dag, &mut oracle, crowd::MemberId(0), &cfg)
                }
            };
            trials.push((dag, run));
        }

        // canonical replays first, then each permutation across all
        // three trials (the golden folds the trials in order)
        for perm in 0..=permutation_count() {
            let mut h = FNV_OFFSET;
            for (dag, run) in &trials {
                let log = if perm == 0 {
                    run.ops.clone()
                } else {
                    shuffled(&run.ops, perm)
                };
                let replay = log.replay(dag, &agg, &pool, &tele);
                fig5_fold(&mut h, &replay);
            }
            assert_eq!(
                h, expected,
                "{name}: permutation {perm} diverged from the golden digest"
            );
        }
    }
}
