//! Crash-recovery smoke corpus (CI on every push; the nightly job
//! widens it via `RECOVERY_SEEDS`).
//!
//! A fixed range of seeds drives the kill-at-tick harness: server-kill
//! schedules cut the process model mid-run, restarts replay the
//! surviving WAL prefix, and every recovered `SemanticOutcome` digest
//! must reproduce bit-identically. Failures are shrunk to a one-line
//! replayable schedule before being reported.

use simtest::{
    run_recovery_corpus, run_recovery_seed, run_recovery_with_schedule, shrink_schedule,
    RecoveryConfig, RecoveryReport, Schedule,
};

/// Seed range: `0..RECOVERY_SEEDS` (default 6 — each seed is a full
/// kill/restart matrix over real file IO, so the push corpus is small).
fn corpus_size() -> u64 {
    std::env::var("RECOVERY_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(6)
}

/// Nightly matrix knob: `RECOVERY_SNAPSHOTS` pins the snapshot cadence
/// for the whole corpus (`none` = WAL only, `every-N` = compact every N
/// durable queries) instead of the default per-seed mix, so a
/// compaction regression cannot hide behind seeds that drew `none`.
fn pinned_snapshot_cadence() -> Option<u32> {
    let raw = std::env::var("RECOVERY_SNAPSHOTS").ok()?;
    match raw.as_str() {
        "" | "mixed" => None,
        "none" => Some(0),
        other => other.strip_prefix("every-").and_then(|n| n.parse().ok()),
    }
}

/// The corpus runner, with the cadence override applied when pinned;
/// failures come back with their schedules already shrunk 1-minimal.
fn run_corpus(seeds: std::ops::Range<u64>) -> Vec<RecoveryReport> {
    let Some(cadence) = pinned_snapshot_cadence() else {
        return run_recovery_corpus(seeds);
    };
    seeds
        .filter_map(|seed| {
            let mut cfg = RecoveryConfig::from_seed(seed);
            cfg.snapshot_every = cadence;
            let report = run_recovery_with_schedule(&cfg, &cfg.schedule);
            if report.passed() {
                return None;
            }
            let minimal = shrink_schedule(&cfg.schedule, |s| {
                !run_recovery_with_schedule(&cfg, s).passed()
            });
            Some(run_recovery_with_schedule(&cfg, &minimal))
        })
        .collect()
}

#[test]
fn seed_corpus_recovers_every_kill_schedule() {
    let failures = run_corpus(0..corpus_size());
    assert!(
        failures.is_empty(),
        "failing seeds (schedules already shrunk):\n{}",
        failures
            .iter()
            .map(|r| format!(
                "  seed {} schedule `{}`: {}",
                r.seed,
                r.schedule.to_line(),
                r.failures.join("; ")
            ))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn same_seed_reproduces_bit_identical_recovery_digests() {
    for seed in [1u64, 4] {
        let a = run_recovery_seed(seed);
        let b = run_recovery_seed(seed);
        assert_eq!(a.digest, b.digest, "seed {seed} digest drifted");
        assert_eq!(a.schedule, b.schedule, "seed {seed} schedule drifted");
    }
}

#[test]
fn replayed_kill_line_reproduces_the_exact_report() {
    // a hand-written worst case: three kills in one session, early and
    // mid-run, against a snapshotting WAL
    let mut cfg = RecoveryConfig::from_seed(17);
    cfg.snapshot_every = 2;
    let schedule = Schedule::parse("s0@1,s0@5,s0@9").unwrap();
    let a = run_recovery_with_schedule(&cfg, &schedule);
    assert!(
        a.passed(),
        "kill schedule `{}` violated: {}",
        schedule.to_line(),
        a.failures.join("; ")
    );
    let replayed = Schedule::parse(&schedule.to_line()).unwrap();
    let b = run_recovery_with_schedule(&cfg, &replayed);
    assert_eq!(a.digest, b.digest);
    assert_eq!(a.failures, b.failures);
}

#[test]
fn fault_free_recovery_schedule_passes_trivially() {
    let cfg = RecoveryConfig::from_seed(8);
    let report = run_recovery_with_schedule(&cfg, &Schedule::fault_free());
    assert!(report.passed(), "{:?}", report.failures);
}
