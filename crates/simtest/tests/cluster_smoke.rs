//! Fast cluster-simulation smoke corpus (CI on every push, < 60 s).
//!
//! A fixed range of seeds drives the shard-equivalence oracle at each
//! shard count: the fault-free cluster merge must be bit-identical to
//! the single-node run, generated cluster schedules (member faults ×
//! partitions × crash/restart) must degrade gracefully and replay
//! deterministically, and net-fault-only schedules that fully deliver
//! must not move the digest. The nightly matrix widens both knobs via
//! `SIM_SEEDS` and `CLUSTER_SHARDS`.

use simtest::{
    run_cluster, run_cluster_seed, shrink_cluster_failure, single_node_reference, ClusterConfig,
    Schedule,
};

/// Seed range: `0..SIM_SEEDS` (default 8 — sized for the push-CI
/// budget together with the shard sweep below).
fn corpus_size() -> u64 {
    std::env::var("SIM_SEEDS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(8)
}

/// Shard counts under test: `CLUSTER_SHARDS` (comma-separated, default
/// `2,4` on push; the nightly matrix runs each of {1, 2, 4, 8} alone).
fn shard_counts() -> Vec<u32> {
    std::env::var("CLUSTER_SHARDS")
        .ok()
        .map(|s| s.split(',').filter_map(|n| n.trim().parse().ok()).collect())
        .filter(|v: &Vec<u32>| !v.is_empty())
        .unwrap_or_else(|| vec![2, 4])
}

#[test]
fn cluster_seed_corpus_upholds_the_shard_equivalence_oracle() {
    let mut failures = Vec::new();
    for seed in 0..corpus_size() {
        for &shards in &shard_counts() {
            let report = run_cluster_seed(seed, shards);
            if !report.passed() {
                let report = shrink_cluster_failure(seed, shards).unwrap_or(report);
                failures.push(format!(
                    "  seed {} N={} schedule `{}`: {}",
                    report.seed,
                    report.shards,
                    report.schedule.to_line(),
                    report.failures.join("; ")
                ));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "failing cluster sessions (schedules already shrunk):\n{}",
        failures.join("\n")
    );
}

#[test]
fn fault_free_digest_is_invariant_across_shard_counts_and_runs() {
    for seed in [0u64, 3, 7] {
        let mut digests = Vec::new();
        for &shards in &shard_counts() {
            let a = run_cluster_seed(seed, shards);
            let b = run_cluster_seed(seed, shards);
            assert!(a.passed(), "seed {seed} N={shards}: {:?}", a.failures);
            assert_eq!(
                a.fault_free_digest, b.fault_free_digest,
                "seed {seed} N={shards} digest drifted between runs"
            );
            digests.push(a.fault_free_digest);
        }
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "seed {seed}: digest depends on the shard count: {digests:?}"
        );
    }
}

#[test]
fn heavy_cluster_fault_load_degrades_gracefully() {
    // A hand-built worst case: a member fault barrage (as in the
    // single-node smoke), every worker partitioned at least once, one
    // crash/restart and one permanent kill — on top of a dense
    // generated cluster schedule.
    let cfg = ClusterConfig::from_seed(99, 4);
    let mut schedule = Schedule::parse(
        "x2@0,a1@0(6),d0@0,y0@2(9),c1@3,p0|4@1(8),p1|4@4(6),p2|4@2(12),p3|4@6(4),k1@3(7),k3@5",
    )
    .unwrap();
    schedule
        .events
        .extend(Schedule::generate_cluster(123, 8, 4, 30, 8).events);
    schedule.events.sort_by_key(|e| (e.at, e.member));
    let report = simtest::run_cluster_with_schedule(&cfg, &schedule);
    assert!(
        report.passed(),
        "heavy cluster schedule `{}` violated: {}",
        schedule.to_line(),
        report.failures.join("; ")
    );
}

#[test]
fn crash_restart_recovers_to_the_fault_free_digest() {
    // A pure crash/restart schedule delivers everything after resync,
    // so the merged digest must equal the single-node one — the restart
    // path itself is what's under test, so assert it actually resynced.
    let cfg = ClusterConfig::from_seed(11, 2);
    let map = simtest::ShardMap::round_robin(simtest::CLUSTER_MEMBERS, 2);
    let off = telemetry::Telemetry::off();
    let (reference, _) = single_node_reference(&cfg).expect("reference run");
    let schedule = Schedule::parse("k0@3(6),k1@8(5)").unwrap();
    let run = run_cluster(&cfg, &map, &schedule, &off).expect("cluster run");
    assert!(
        !run.net.restarts.is_empty(),
        "schedule never exercised a resync: {:?}",
        run.net
    );
    assert!(run.net.fully_delivered, "{:?}", run.net);
    assert_eq!(run.outcome, reference);
    assert_eq!(run.digest, reference.digest());
}

#[test]
fn ddmin_shrinks_cluster_schedules_to_the_culprit_token() {
    // Shrinking must work over the new token kinds: a predicate that
    // fails iff a permanent kill of node 0 is present shrinks a dense
    // mixed schedule to exactly that one event.
    let schedule = Schedule::parse("d0@1,p0|2@2(5),k1@3(4),y1@4(2),k0@6,p1|2@7(3),c0@8").unwrap();
    let kills_node0 = |s: &Schedule| {
        s.events
            .iter()
            .any(|e| matches!(e.kind, simtest::FaultKind::Crash { down: None }) && e.member == 0)
    };
    let minimal = simtest::shrink_schedule(&schedule, kills_node0);
    assert_eq!(minimal.to_line(), "k0@6");
    assert_eq!(minimal.events.len(), 1);
}
