//! Op-log permutation checking: the machinery behind the golden-digest
//! permutation oracle (`tests/oplog_permutation.rs`).
//!
//! A mining run's [`OpLog`] is order-free under the canonical
//! `(tick, member, seq)` merge order: replaying ANY permutation of the
//! ops must converge to the same digest-bearing outcome. This module
//! supplies the pieces the harness composes:
//!
//! * [`shuffled`] — a deterministic Fisher–Yates permutation of a log;
//! * [`domain_replay_digest`] — folds a [`ReplayOutcome`] with exactly
//!   the FNV-1a recipe `bench_speed` uses for the E-domain workloads
//!   (`digest_domain_run`), so a replay digest is directly comparable
//!   to the committed `BENCH_speed.json` goldens;
//! * [`fig5_fold`] — the per-trial fold of the Figure-5 strategy
//!   workloads (questions, MSP count, event stream);
//! * [`permutation_count`] — the shuffle budget, `OPLOG_PERMS` from the
//!   environment (nightly widens it) with a push-CI default of 12.

use oassis_core::{AnswerOp, OpLog, ReplayOutcome};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// FNV-1a over raw bytes — byte-compatible with the `bench_speed` and
/// `digest_domain_run` folds.
pub fn fnv(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// Folds one machine word.
pub fn fnv_usize(h: &mut u64, v: usize) {
    fnv(h, &(v as u64).to_le_bytes());
}

/// The FNV offset basis every digest in the workspace starts from.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Digest of a replayed E-domain outcome, field-for-field identical to
/// `bench::digest_domain_run` over the round-driven run — equal digests
/// mean the replay reproduced the run bit-identically.
pub fn domain_replay_digest(r: &ReplayOutcome) -> u64 {
    let mut h = FNV_OFFSET;
    fnv_usize(&mut h, r.questions);
    fnv_usize(&mut h, r.msps.len());
    fnv_usize(&mut h, r.valid_msps.len());
    fnv_usize(&mut h, r.undecided);
    fnv_usize(&mut h, r.total_valid);
    fnv_usize(&mut h, r.nodes_materialized);
    fnv_usize(&mut h, usize::from(r.complete));
    fold_events(&mut h, &r.events);
    h
}

/// Folds a replayed Figure-5 trial into a running digest: question
/// count, MSP count, then the event stream — the exact per-trial fold
/// of `bench_speed`'s `fig5_workloads`.
pub fn fig5_fold(h: &mut u64, r: &ReplayOutcome) {
    fnv_usize(h, r.questions);
    fnv_usize(h, r.msps.len());
    fold_events(h, &r.events);
}

fn fold_events(h: &mut u64, events: &[oassis_core::DiscoveryEvent]) {
    for e in events {
        fnv_usize(h, e.question);
        fnv(h, format!("{:?}", e.kind).as_bytes());
    }
}

/// A deterministic random permutation of `ops`' op sequence (the footer
/// is carried unchanged).
pub fn shuffled(ops: &OpLog, seed: u64) -> OpLog {
    let mut perm: Vec<AnswerOp> = ops.ops().to_vec();
    perm.shuffle(&mut StdRng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15));
    ops.with_ops(perm)
}

/// How many random permutations each workload replays: `OPLOG_PERMS`
/// from the environment, defaulting to 12 (sized for the push-CI
/// budget; the nightly matrix raises it).
pub fn permutation_count() -> u64 {
    // audit: allow(D2, harness-depth knob like minipool's thread count - the count only widens the shuffle sweep; every shuffle is seeded, so no outcome can depend on it)
    std::env::var("OPLOG_PERMS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(12)
}
