//! Schedule shrinking: minimize a failing fault schedule to the smallest
//! event subset that still reproduces the failure.
//!
//! A ddmin-style greedy reducer: repeatedly try removing chunks of
//! events (halving chunk sizes down to single events) and keep any
//! removal under which the failure predicate still holds, looping to a
//! fixpoint. Because schedule replay is deterministic, the predicate is
//! a pure function of the schedule and the result is reproducible; the
//! shrunk schedule's [`Schedule::to_line`] is the one-line replayable
//! counterexample reported to the user.

use crate::schedule::Schedule;

/// Shrinks `schedule` while `fails` keeps returning `true`. The returned
/// schedule still fails (it is only ever replaced by a smaller failing
/// one) and is 1-minimal: removing any single remaining event makes the
/// failure disappear.
pub fn shrink<F: FnMut(&Schedule) -> bool>(schedule: &Schedule, mut fails: F) -> Schedule {
    debug_assert!(fails(schedule), "shrink() needs a failing schedule");
    let mut best = schedule.clone();
    loop {
        let before = best.events.len();
        let mut chunk = (best.events.len() / 2).max(1);
        while chunk >= 1 {
            let mut start = 0;
            while start < best.events.len() {
                let mut candidate = best.clone();
                let end = (start + chunk).min(candidate.events.len());
                candidate.events.drain(start..end);
                if fails(&candidate) {
                    best = candidate;
                    // re-test the same offset: the next chunk slid into it
                } else {
                    start += chunk;
                }
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        if best.events.len() == before {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::{FaultEvent, FaultKind};

    fn sched(n: usize) -> Schedule {
        Schedule {
            events: (0..n)
                .map(|i| FaultEvent {
                    at: i as u64,
                    member: 0,
                    kind: FaultKind::Drop,
                })
                .collect(),
        }
    }

    #[test]
    fn shrinks_to_the_single_culprit() {
        // failure iff the event at tick 13 is present
        let fails = |s: &Schedule| s.events.iter().any(|e| e.at == 13);
        let out = shrink(&sched(40), fails);
        assert_eq!(out.events.len(), 1);
        assert_eq!(out.events[0].at, 13);
    }

    #[test]
    fn shrinks_conjunctions_to_minimal_pairs() {
        // failure needs both tick 3 and tick 17
        let fails = |s: &Schedule| {
            s.events.iter().any(|e| e.at == 3) && s.events.iter().any(|e| e.at == 17)
        };
        let out = shrink(&sched(30), fails);
        assert_eq!(out.events.len(), 2);
        let ticks: Vec<u64> = out.events.iter().map(|e| e.at).collect();
        assert_eq!(ticks, vec![3, 17]);
    }

    #[test]
    fn result_is_one_minimal() {
        let fails = |s: &Schedule| s.events.len() >= 3;
        let out = shrink(&sched(24), fails);
        assert_eq!(out.events.len(), 3);
        for i in 0..out.events.len() {
            let mut smaller = out.clone();
            smaller.events.remove(i);
            assert!(!fails(&smaller));
        }
    }
}
