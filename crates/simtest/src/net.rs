//! The simulated cluster network: seeded delivery over a star topology.
//!
//! Worker nodes `0..N-1` ship their op logs (in wire form) to the
//! coordinator at index `N`; the coordinator acks its contiguous
//! received prefix back. Everything nondeterministic in a real network
//! is a pure function of the seed here, on the same logical clock the
//! rest of simtest uses:
//!
//! * **Latency and reordering** — every message draws a bounded jitter
//!   from a seeded RNG, so batches from one node can overtake each
//!   other. The coordinator's contiguous-prefix ingest rejects the
//!   resulting gaps; periodic retransmission from the acked watermark
//!   closes them.
//! * **Partitions** — a [`FaultKind::Partition`] event severs one
//!   worker↔coordinator link for a bounded window; messages crossing a
//!   severed link are dropped at send time.
//! * **Crash/restart** — a [`FaultKind::Crash`] event takes a worker
//!   down. Its durable op log survives; its volatile send/ack cursors do
//!   not. On restart it re-syncs with `SyncReq` → `SyncAck{count}` —
//!   the coordinator's watermark — and resumes sending from there. A
//!   crash with no restart (`down: None`) freezes the node forever; its
//!   engine progress stops with it.
//!
//! The loop runs to quiescence: every live worker fully acked and the
//! wire empty (a hard tick cap backstops pathological schedules). The
//! returned [`NetStats`] says whether every log was fully delivered —
//! the bit the equivalence oracle uses to decide whether a faulty run
//! must still merge to the fault-free digest.

// audit: allow-file(D4, node vectors are sized to cfg.nodes and member ids are range-checked before use)
use crate::schedule::{FaultKind, Schedule};
use oassis_core::cluster::{Coordinator, WireOp};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Tunables for one simulated network session.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Worker count (the coordinator sits at index `nodes`).
    pub nodes: u32,
    /// Seed for delivery jitter (independent of the engine seed).
    pub seed: u64,
    /// Base one-way latency in ticks.
    pub latency: u64,
    /// Maximum extra seeded latency per message (draws `0..=jitter`).
    pub jitter: u64,
    /// Retransmit unacked ops (or an unanswered `SyncReq`) after this
    /// many ticks of silence.
    pub resend_every: u64,
    /// Hard cap on simulated ticks (backstop; quiescence normally ends
    /// the run much earlier).
    pub max_ticks: u64,
}

impl NetConfig {
    /// Defaults: latency 1, jitter 3 (enough to reorder adjacent
    /// batches), resend every 4 ticks, 10 000-tick cap.
    pub fn new(nodes: u32, seed: u64) -> NetConfig {
        NetConfig {
            nodes,
            seed,
            latency: 1,
            jitter: 3,
            resend_every: 4,
            max_ticks: 10_000,
        }
    }
}

/// What happened on the wire — the observability face of one session.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct NetStats {
    /// Ticks until quiescence (or the cap).
    pub ticks: u64,
    /// Messages enqueued (including retransmissions and acks).
    pub msgs_sent: u64,
    /// Messages dropped by partitions or crashed receivers.
    pub msgs_dropped: u64,
    /// Messages delivered.
    pub msgs_delivered: u64,
    /// Batch or sync retransmissions after silence.
    pub retransmits: u64,
    /// One `(node, resume_from)` entry per completed crash recovery:
    /// the coordinator watermark the node resumed sending from.
    pub restarts: Vec<(u32, usize)>,
    /// Whether the coordinator holds every worker's full log — true iff
    /// the merge must equal the fault-free one.
    pub fully_delivered: bool,
}

#[derive(Debug, Clone, PartialEq)]
enum Payload {
    /// Ops `start..start + ops.len()` of the sender's log.
    Batch { start: usize, ops: Vec<WireOp> },
    /// Coordinator → worker: contiguous received prefix.
    Ack { count: usize },
    /// Restarted worker → coordinator: where should I resume?
    SyncReq,
    /// Coordinator → worker: resume from this watermark.
    SyncAck { count: usize },
}

#[derive(Debug, Clone, PartialEq)]
struct Msg {
    src: u32,
    dst: u32,
    deliver_at: u64,
    /// Tie-breaker: enqueue order. Jitter reorders across seqs; equal
    /// `deliver_at` delivers in send order — deterministic either way.
    seq: u64,
    payload: Payload,
}

/// Volatile worker state; the durable log lives outside.
#[derive(Debug)]
struct NodeState {
    /// Engine ticks executed so far (pauses while down).
    progress: u64,
    /// Ops sent so far (volatile — lost on crash).
    sent: usize,
    /// Ops the coordinator acked (volatile — lost on crash).
    acked: usize,
    up: bool,
    /// `Some(t)`: down until tick `t`. `None` while up, or forever down
    /// after a permanent kill.
    down_until: Option<u64>,
    /// After a restart the node must re-learn its watermark before
    /// sending batches.
    synced: bool,
    /// Last tick this node sent anything (drives retransmission).
    last_send: u64,
}

/// Runs the dissemination session: each worker's durable `logs[i]`
/// flows to `coord` under the node-fault `schedule` (member faults are
/// ignored here — [`Schedule::split_cluster`] routes those to
/// [`crate::faulty::FaultyCrowd`]).
pub fn run_net(
    logs: &[Vec<WireOp>],
    coord: &mut Coordinator,
    schedule: &Schedule,
    cfg: &NetConfig,
    tele: &telemetry::Telemetry,
) -> NetStats {
    assert_eq!(logs.len(), cfg.nodes as usize, "one log per worker");
    let coord_idx = cfg.nodes;
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED_0F7E_11E7_C0DE);
    let mut stats = NetStats::default();
    let span = tele.span_with("net.session", &format!("nodes={}", cfg.nodes));
    let tele = span.tele().clone();

    // Node-fault windows, precomputed. Partitions cut one
    // worker↔coordinator link; a partition naming two workers cuts
    // nothing (there is no such link in the star).
    let mut partitions: Vec<(u32, u64, u64)> = Vec::new(); // (worker, from, to)
    let mut crashes: Vec<(u32, u64, Option<u64>)> = Vec::new(); // (worker, at, up_at)
    for e in &schedule.events {
        match e.kind {
            FaultKind::Partition { peer, dur } => {
                let worker = if e.member == coord_idx {
                    Some(peer)
                } else if peer == coord_idx {
                    Some(e.member)
                } else {
                    None
                };
                if let Some(w) = worker {
                    if w < cfg.nodes {
                        partitions.push((w, e.at, e.at.saturating_add(dur)));
                    }
                }
            }
            FaultKind::Crash { down } if e.member < cfg.nodes => {
                crashes.push((e.member, e.at, down.map(|d| e.at.saturating_add(d))));
            }
            // A crash naming the coordinator (or an out-of-range member)
            // has no node to take down in the star.
            FaultKind::Crash { .. } => {}
            // Member faults belong to FaultyCrowd, not the network.
            FaultKind::Drop
            | FaultKind::Delay(_)
            | FaultKind::Contradict
            | FaultKind::Depart
            | FaultKind::Absent(_) => {}
            // Server kills belong to the crash-recovery harness
            // (`crate::recovery`), not the cluster star.
            FaultKind::ServerKill => {}
        }
    }
    let cut = |worker: u32, at: u64| {
        partitions
            .iter()
            .any(|&(w, from, to)| w == worker && at >= from && at < to)
    };

    let mut nodes: Vec<NodeState> = (0..cfg.nodes)
        .map(|_| NodeState {
            progress: 0,
            sent: 0,
            acked: 0,
            up: true,
            down_until: None,
            synced: true,
            last_send: 0,
        })
        .collect();
    // a node's whole log is "produced" once its engine progress passes
    // the last op's local tick
    let produced = |log: &[WireOp], progress: u64| -> usize {
        log.partition_point(|op| u64::from(op.tick) <= progress)
    };

    let mut wire: Vec<Msg> = Vec::new();
    let mut next_seq: u64 = 0;
    let mut now: u64 = 0;
    loop {
        // 1 — fault events due now: crashes wipe volatile state;
        // restarts come back amnesiac and ask for their watermark.
        for &(w, at, up_at) in &crashes {
            if at == now {
                let n = &mut nodes[w as usize];
                n.up = false;
                n.down_until = up_at;
                n.sent = 0;
                n.acked = 0;
                n.synced = false;
                tele.labeled(&format!("net.node{w}")).mark(
                    "crash",
                    if up_at.is_some() {
                        "restartable"
                    } else {
                        "permanent"
                    },
                );
            }
        }
        let mut outbox: Vec<(u32, u32, Payload)> = Vec::new();
        for (i, n) in nodes.iter_mut().enumerate() {
            if n.down_until == Some(now) {
                n.up = true;
                n.down_until = None;
                n.last_send = now;
                outbox.push((i as u32, coord_idx, Payload::SyncReq));
            }
        }

        // 2 — deliver everything due now, in (deliver_at, seq) order.
        let mut due: Vec<Msg> = Vec::new();
        wire.retain(|m| {
            if m.deliver_at == now {
                due.push(m.clone());
                false
            } else {
                true
            }
        });
        due.sort_by_key(|m| m.seq);
        for m in due {
            if m.dst == coord_idx {
                match m.payload {
                    Payload::Batch { start, ops } => {
                        let count = coord.ingest(m.src, start, &ops);
                        stats.msgs_delivered += 1;
                        tele.count("net.batches_in", 1);
                        outbox.push((coord_idx, m.src, Payload::Ack { count }));
                    }
                    Payload::SyncReq => {
                        stats.msgs_delivered += 1;
                        let count = coord.received(m.src);
                        outbox.push((coord_idx, m.src, Payload::SyncAck { count }));
                    }
                    Payload::Ack { .. } | Payload::SyncAck { .. } => {
                        unreachable!("workers never send acks")
                    }
                }
            } else {
                let n = &mut nodes[m.dst as usize];
                if !n.up {
                    stats.msgs_dropped += 1; // crashed receiver
                    continue;
                }
                stats.msgs_delivered += 1;
                match m.payload {
                    Payload::Ack { count } => {
                        n.acked = n.acked.max(count);
                        n.sent = n.sent.max(n.acked);
                    }
                    Payload::SyncAck { count } => {
                        if !n.synced {
                            n.acked = count;
                            n.sent = count;
                            n.synced = true;
                            stats.restarts.push((m.dst, count));
                            tele.labeled(&format!("net.node{}", m.dst))
                                .mark("resync", &format!("from={count}"));
                        }
                    }
                    Payload::Batch { .. } | Payload::SyncReq => {
                        unreachable!("only the coordinator sends batches' acks")
                    }
                }
            }
        }

        // 3 — live engines make progress on their partitions.
        for n in nodes.iter_mut().filter(|n| n.up) {
            n.progress += 1;
        }

        // 4 — send phase: fresh batches, then silence-triggered resends.
        for i in 0..cfg.nodes {
            let log = &logs[i as usize];
            let n = &mut nodes[i as usize];
            if !n.up {
                continue;
            }
            if !n.synced {
                // SyncReq (or its answer) may itself be lost to a
                // partition; re-ask after silence
                if now.saturating_sub(n.last_send) >= cfg.resend_every {
                    n.last_send = now;
                    stats.retransmits += 1;
                    outbox.push((i, coord_idx, Payload::SyncReq));
                }
                continue;
            }
            let avail = produced(log, n.progress);
            if avail > n.sent {
                outbox.push((
                    i,
                    coord_idx,
                    Payload::Batch {
                        start: n.sent,
                        ops: log[n.sent..avail].to_vec(),
                    },
                ));
                n.sent = avail;
                n.last_send = now;
            } else if n.acked < n.sent && now.saturating_sub(n.last_send) >= cfg.resend_every {
                outbox.push((
                    i,
                    coord_idx,
                    Payload::Batch {
                        start: n.acked,
                        ops: log[n.acked..n.sent].to_vec(),
                    },
                ));
                stats.retransmits += 1;
                n.last_send = now;
            }
        }

        // 5 — enqueue the outbox; partitions drop at send time.
        for (src, dst, payload) in outbox {
            let worker = if src == coord_idx { dst } else { src };
            stats.msgs_sent += 1;
            if cut(worker, now) {
                stats.msgs_dropped += 1;
                tele.count("net.partition_drops", 1);
                continue;
            }
            let jitter = if cfg.jitter == 0 {
                0
            } else {
                rng.gen_range(0..=cfg.jitter)
            };
            if let Payload::Batch { ops, .. } = &payload {
                tele.labeled(&format!("net.node{worker}"))
                    .count("ops_sent", ops.len() as u64);
            }
            wire.push(Msg {
                src,
                dst,
                deliver_at: now + 1 + cfg.latency.saturating_add(jitter),
                seq: next_seq,
                payload,
            });
            next_seq += 1;
        }
        tele.observe("net.ops_in_flight", in_flight(&wire));

        // 6 — quiescence: every worker is either permanently dead or
        // fully acked, nothing is on the wire, and no restart is pending.
        let settled = nodes.iter().enumerate().all(|(i, n)| {
            let killed = !n.up && n.down_until.is_none();
            killed || (n.up && n.synced && n.acked == logs[i].len())
        });
        if settled && wire.is_empty() {
            break;
        }
        now += 1;
        if now >= cfg.max_ticks {
            break;
        }
    }

    stats.ticks = now;
    stats.fully_delivered = (0..cfg.nodes).all(|i| coord.received(i) == logs[i as usize].len());
    tele.count("net.msgs_sent", stats.msgs_sent);
    tele.count("net.msgs_dropped", stats.msgs_dropped);
    stats
}

fn in_flight(wire: &[Msg]) -> u64 {
    wire.iter()
        .map(|m| match &m.payload {
            Payload::Batch { ops, .. } => ops.len() as u64,
            _ => 0,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crowd::MemberId;
    use oassis_core::cluster::WireVerdict;

    fn toy_log(node: u32, len: u32) -> Vec<WireOp> {
        (1..=len)
            .map(|t| WireOp {
                tick: t,
                seq: 0,
                member: MemberId(node), // member ids are global; one per node here
                node: None,
                verdict: WireVerdict::NoAnswer,
            })
            .collect()
    }

    fn session(schedule: &str, seed: u64) -> (NetStats, Coordinator) {
        let logs = vec![toy_log(0, 6), toy_log(1, 4)];
        let mut coord = Coordinator::new(2, 0.5, true);
        let schedule = Schedule::parse(schedule).expect("test schedule parses");
        let cfg = NetConfig::new(2, seed);
        let stats = run_net(
            &logs,
            &mut coord,
            &schedule,
            &cfg,
            &telemetry::Telemetry::off(),
        );
        (stats, coord)
    }

    #[test]
    fn fault_free_sessions_deliver_everything() {
        for seed in 0..20 {
            let (stats, coord) = session("ok", seed);
            assert!(stats.fully_delivered, "seed {seed}: {stats:?}");
            assert_eq!(coord.received(0), 6);
            assert_eq!(coord.received(1), 4);
            assert_eq!(stats.msgs_dropped, 0);
            assert!(stats.restarts.is_empty());
            // determinism: same seed, same session
            let (again, _) = session("ok", seed);
            assert_eq!(stats, again);
        }
    }

    #[test]
    fn partitions_drop_then_retransmission_recovers() {
        let mut dropped_somewhere = false;
        for seed in 0..20 {
            let (stats, _) = session("p0|2@1(6)", seed);
            assert!(stats.fully_delivered, "seed {seed}: {stats:?}");
            dropped_somewhere |= stats.msgs_dropped > 0;
        }
        assert!(dropped_somewhere, "a 6-tick partition never cost a message");
    }

    #[test]
    fn crash_restart_resyncs_from_the_watermark() {
        let mut resumed_mid_log = false;
        for seed in 0..20 {
            let (stats, _) = session("k0@2(5)", seed);
            assert!(stats.fully_delivered, "seed {seed}: {stats:?}");
            let &(node, from) = stats
                .restarts
                .first()
                .expect("restart must complete a resync");
            assert_eq!(node, 0);
            resumed_mid_log |= from > 0;
        }
        assert!(resumed_mid_log, "no restart ever resumed past op 0");
    }

    #[test]
    fn permanent_kill_freezes_the_node_but_not_the_session() {
        let (stats, coord) = session("k0@2", 7);
        assert!(!stats.fully_delivered);
        assert!(coord.received(0) < 6, "killed node delivered everything?");
        assert_eq!(coord.received(1), 4, "surviving node must finish");
        assert!(stats.restarts.is_empty());
        assert!(stats.ticks < NetConfig::new(2, 7).max_ticks);
    }

    #[test]
    fn worker_to_worker_partitions_cut_nothing_in_a_star() {
        let (stats, _) = session("p0|1@1(50)", 3);
        assert!(stats.fully_delivered);
        assert_eq!(stats.msgs_dropped, 0);
    }
}
