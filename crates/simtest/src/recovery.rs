//! Kill-at-tick crash recovery: the server process model under
//! [`FaultKind::ServerKill`](crate::schedule::FaultKind::ServerKill).
//!
//! One seed derives a session spec (crowd size, snapshot cadence) and a
//! [`Schedule`] of server-kill ticks. The harness drives an
//! `oassis_server::SessionManager` through one process lifetime per
//! kill: a query runs, the `KillSwitch` silently drops every durable
//! append from the kill tick on (a faithful process death — the
//! in-memory run continues, the WAL keeps only a prefix), the process
//! is dropped, and a fresh manager recovers over the same WAL root.
//! The oracle, per restart:
//!
//! 1. **Durability:** every query whose done-record survived replays to
//!    its recorded `SemanticOutcome` digest bit-identically;
//! 2. **Prefix safety:** the cut query replays without panicking —
//!    whatever op prefix survived is a valid partial classification;
//! 3. **Resumption:** after the final restart, re-running the query
//!    lands on the fault-free digest, and the paged-in answer cache
//!    serves every repeat (zero fresh crowd questions);
//! 4. **Determinism:** the digest folded over every replay is a pure
//!    function of `(seed, schedule)`.
//!
//! Failing schedules shrink via [`crate::shrink::shrink`] to a
//! 1-minimal, one-line replayable counterexample, exactly like the
//! engine ([`crate::harness`]) and cluster ([`crate::cluster`])
//! harnesses.

use crate::schedule::Schedule;
use crate::shrink::shrink;
use oassis_server::{Figure1Provider, KillSwitch, QuerySpec, SessionManager, SessionSpec};
use ontology::domains::figure1;
use ontology::Ontology;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Everything one crash-recovery session needs, derived from one seed.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// The master seed (crowd seeds, schedule, query rng).
    pub seed: u64,
    /// Simulated crowd size for the session.
    pub members: u32,
    /// Member-WAL records between snapshot compactions (0 = never
    /// compact), so the matrix covers snapshot and flat recovery.
    pub snapshot_every: u32,
    /// The server-kill schedule driven through the process model.
    pub schedule: Schedule,
}

impl RecoveryConfig {
    /// Derives a full configuration from `seed` alone — the only input
    /// a failure report needs to quote.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5E4E_C0DE_D15C_0B01);
        let members = rng.gen_range(1..=3);
        let snapshot_every = [0u32, 2, 4][rng.gen_range(0..3usize)]; // PANIC-OK: index drawn from 0..3.
        let schedule = Schedule::generate_recovery(seed, 14, 3);
        RecoveryConfig {
            seed,
            members,
            snapshot_every,
            schedule,
        }
    }
}

/// The verdict for one seed.
#[derive(Debug)]
pub struct RecoveryReport {
    /// The seed that derives everything.
    pub seed: u64,
    /// The schedule that was driven (replayable via its
    /// [`Schedule::to_line`]).
    pub schedule: Schedule,
    /// Property violations, empty on success.
    pub failures: Vec<String>,
    /// Digest folded over every recovered and resumed outcome — a pure
    /// function of `(seed, schedule)`.
    pub digest: u64,
}

impl RecoveryReport {
    /// Whether every property held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

fn fold(h: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *h ^= u64::from(b);
        *h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
}

/// A WAL root unique to this `(seed, schedule)` run, cleared of any
/// previous run's leftovers (the shrinker replays many schedules for
/// one seed, so the schedule line is part of the name).
fn wal_root(seed: u64, schedule: &Schedule) -> PathBuf {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    fold(&mut h, schedule.to_line().as_bytes());
    let dir = std::env::temp_dir().join(format!(
        "oassis-simtest-recovery-{}-{seed}-{h:016x}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn query_spec(seed: u64) -> QuerySpec {
    QuerySpec {
        src: figure1::SIMPLE_QUERY.to_string(),
        threshold: None,
        batch_width: 1,
        max_questions: None,
        seed,
    }
}

fn manager(
    ont: &Arc<Ontology>,
    root: &Path,
    cfg: &RecoveryConfig,
    kill: Option<KillSwitch>,
) -> SessionManager {
    let mgr = SessionManager::new(
        ont.clone(),
        Box::new(Figure1Provider::new(ont.clone())),
        root.to_path_buf(),
    )
    .with_snapshot_every(cfg.snapshot_every);
    match kill {
        Some(k) => mgr.with_kill(k),
        None => mgr,
    }
}

/// Fault-free reference for `cfg`: the digest a cold, uninterrupted run
/// of the session's query produces, and how many fresh crowd questions
/// it costs.
fn reference(ont: &Arc<Ontology>, cfg: &RecoveryConfig) -> Result<(String, usize), String> {
    let root = wal_root(cfg.seed, &Schedule::fault_free()).join("ref");
    let mut mgr = manager(ont, &root, cfg, None);
    let spec = SessionSpec {
        name: "r".into(),
        seed: cfg.seed,
        members: cfg.members,
    };
    let out = (|| {
        mgr.open(&spec).map_err(|e| format!("ref open: {e}"))?;
        let reply = mgr
            .query("r", &query_spec(cfg.seed))
            .map_err(|e| format!("ref query: {e}"))?;
        Ok((reply.digest, reply.fresh))
    })();
    let _ = std::fs::remove_dir_all(root.parent().unwrap_or(&root));
    out
}

fn check_cycle(cfg: &RecoveryConfig, schedule: &Schedule) -> (Vec<String>, u64) {
    let ont = Arc::new(figure1::ontology());
    let mut failures: Vec<String> = Vec::new();
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let (want_digest, cold_fresh) = match reference(&ont, cfg) {
        Ok(r) => r,
        Err(e) => return (vec![e], digest),
    };
    let root = wal_root(cfg.seed, schedule);
    let spec = SessionSpec {
        name: "s".into(),
        seed: cfg.seed,
        members: cfg.members,
    };
    let qs = query_spec(cfg.seed);
    let kills = schedule.server_kills();

    // Lifetime 0: one query completes and lands durably — the anchor
    // every later restart must verify against.
    {
        let mut mgr = manager(&ont, &root, cfg, None);
        if let Err(e) = mgr.open(&spec).and_then(|_| mgr.query("s", &qs)) {
            failures.push(format!("anchor lifetime: {e}"));
        }
    }

    let mut expected = 1usize;
    for (i, &tick) in kills.iter().enumerate() {
        // One killed lifetime: the process dies (durably) at `tick`
        // while the query keeps running in memory.
        let kill = KillSwitch::new();
        {
            let mut mgr = manager(&ont, &root, cfg, Some(kill.clone()));
            match mgr.open(&spec) {
                Ok(opened) if !opened.resumed => {
                    failures.push(format!("kill {i}: durable session did not resume"))
                }
                Ok(_) => {}
                Err(e) => failures.push(format!("kill {i} open: {e}")),
            }
            kill.arm(u32::try_from(tick).unwrap_or(u32::MAX));
            if let Err(e) = mgr.query("s", &qs) {
                failures.push(format!("kill {i} in-memory query: {e}"));
            }
        }
        expected += 1;

        // Restart over the surviving WAL prefix and verify.
        let mut mgr = manager(&ont, &root, cfg, None);
        match mgr.open(&spec) {
            Ok(opened) if !opened.resumed => {
                failures.push(format!("restart {i}: durable session did not resume"))
            }
            Ok(_) => {}
            Err(e) => failures.push(format!("restart {i} open: {e}")),
        }
        match mgr.recover("s") {
            Ok(recovered) => {
                if recovered.len() != expected {
                    failures.push(format!(
                        "restart {i}: recovered {} queries, expected {expected}",
                        recovered.len()
                    ));
                }
                for r in &recovered {
                    // oracle 1: a surviving done-record must verify
                    if r.recorded_digest.is_some() && r.verified != Some(true) {
                        failures.push(format!(
                            "restart {i} qid {}: replayed {} but recorded {:?}",
                            r.qid, r.digest, r.recorded_digest
                        ));
                    }
                    fold(&mut digest, r.digest.as_bytes());
                    fold(&mut digest, &[u8::from(r.complete)]);
                }
            }
            // oracle 2: prefix replay must never error out
            Err(e) => failures.push(format!("restart {i} recover: {e}")),
        }
    }

    // Final restart: resumption lands on the fault-free digest, and the
    // anchor query's durable answers serve every repeat from cache.
    let mut mgr = manager(&ont, &root, cfg, None);
    match mgr.open(&spec).and_then(|_| mgr.query("s", &qs)) {
        Ok(reply) => {
            if reply.digest != want_digest {
                failures.push(format!(
                    "resumption digest {} != fault-free {want_digest}",
                    reply.digest
                ));
            }
            if reply.fresh != 0 {
                failures.push(format!(
                    "resumption asked {} fresh questions (cold run: {cold_fresh}) — \
                     the recovered answer cache did nothing",
                    reply.fresh
                ));
            }
            fold(&mut digest, reply.digest.as_bytes());
        }
        Err(e) => failures.push(format!("resumption: {e}")),
    }
    let _ = std::fs::remove_dir_all(&root);
    (failures, digest)
}

/// Runs the kill/restart/verify cycle for `schedule` (overriding the
/// one in `cfg`) and checks all recovery properties. This is the replay
/// entry point the shrinker drives.
pub fn run_recovery_with_schedule(cfg: &RecoveryConfig, schedule: &Schedule) -> RecoveryReport {
    let (failures, digest) = match catch_unwind(AssertUnwindSafe(|| check_cycle(cfg, schedule))) {
        Ok(r) => r,
        Err(e) => {
            let msg = e
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| (*s).to_string()))
                .unwrap_or_else(|| "panic (non-string payload)".into());
            (
                vec![format!("panicked under {}: {msg}", schedule.to_line())],
                0,
            )
        }
    };
    RecoveryReport {
        seed: cfg.seed,
        schedule: schedule.clone(),
        failures,
        digest,
    }
}

/// Derives the configuration for `seed` and runs the full recovery
/// property check.
pub fn run_recovery_seed(seed: u64) -> RecoveryReport {
    let cfg = RecoveryConfig::from_seed(seed);
    let schedule = cfg.schedule.clone();
    run_recovery_with_schedule(&cfg, &schedule)
}

/// Runs a corpus of consecutive seeds, returning only the failing
/// reports (each already shrunk to a minimal schedule).
pub fn run_recovery_corpus(seeds: std::ops::Range<u64>) -> Vec<RecoveryReport> {
    seeds
        .filter_map(|seed| {
            let report = run_recovery_seed(seed);
            if report.passed() {
                None
            } else {
                Some(shrink_recovery_failure(seed).unwrap_or(report))
            }
        })
        .collect()
}

/// If `seed` fails, shrinks its schedule to a 1-minimal failing one and
/// returns the (still failing) report for it; `None` if the seed
/// passes.
pub fn shrink_recovery_failure(seed: u64) -> Option<RecoveryReport> {
    let cfg = RecoveryConfig::from_seed(seed);
    let schedule = cfg.schedule.clone();
    if run_recovery_with_schedule(&cfg, &schedule).passed() {
        return None;
    }
    let minimal = shrink(&schedule, |s| !run_recovery_with_schedule(&cfg, s).passed());
    Some(run_recovery_with_schedule(&cfg, &minimal))
}
