//! Deterministic crowd-simulation subsystem (FoundationDB-style).
//!
//! Everything in a simulated session is a pure function of one `u64`
//! seed: the synthetic world (a planted-MSP assignment DAG), the crowd
//! (a pure oracle answering from planted truth), the fault [`Schedule`]
//! (drops, bounded delays, contradictions, member churn, absences) and
//! the engine's RNG. A [`LogicalClock`] replaces wall-clock time, so
//! the engine's [`CrowdPolicy`](crowd::CrowdPolicy) timeout/retry/backoff
//! machinery interacts with fault windows reproducibly.
//!
//! * [`schedule`] — the fault model and its one-line replayable grammar.
//! * [`faulty`] — [`FaultyCrowd`], the schedule-driven crowd wrapper,
//!   and the [`SimTrace`] determinism digest.
//! * [`harness`] — [`run_seed`]: differential oracles across all four
//!   engines and pool widths {1, 2, 4, 8}, graceful-degradation and
//!   budget checks, and bit-identical-replay verification.
//! * [`net`] — the simulated cluster network: seeded latency and
//!   reordering, link partitions, node crash/restart with watermark
//!   resync, all on the logical clock.
//! * [`cluster`] — the differential shard-equivalence oracle: sharded
//!   engines + simulated network + coordinator merge vs the single-node
//!   run, bit-identical fault-free, bounded under faults.
//! * [`recovery`] — the kill-at-tick crash-recovery harness: the
//!   crowd-mining server process model killed mid-run at scheduled
//!   ticks, restarted over the surviving WAL prefix, and verified to
//!   replay pre-crash `SemanticOutcome` digests bit-identically.
//! * [`shrink`] — ddmin-style minimization of failing schedules to a
//!   1-minimal, replayable counterexample.
//! * [`permute`] — op-log permutation checking: deterministic shuffles
//!   and the digest folds behind the golden-digest permutation oracle
//!   (`tests/oplog_permutation.rs`).

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

pub mod clock;
pub mod cluster;
pub mod faulty;
pub mod harness;
pub mod net;
pub mod permute;
pub mod recovery;
pub mod schedule;
pub mod shrink;

pub use clock::LogicalClock;
pub use cluster::{
    run_cluster, run_cluster_seed, run_cluster_with_schedule, shrink_cluster_failure,
    single_node_reference, ClusterConfig, ClusterReport, ClusterRun, CLUSTER_MEMBERS,
};
pub use faulty::{FaultyCrowd, SimTrace, TraceEntry};
pub use harness::{
    record_seed_trace, run_corpus, run_seed, run_with_schedule, shrink_failure, SimConfig,
    SimReport,
};
pub use net::{run_net, NetConfig, NetStats};
pub use oassis_core::cluster::{SemanticOutcome, ShardMap};
pub use permute::{domain_replay_digest, fig5_fold, permutation_count, shuffled};
pub use recovery::{
    run_recovery_corpus, run_recovery_seed, run_recovery_with_schedule, shrink_recovery_failure,
    RecoveryConfig, RecoveryReport,
};
pub use schedule::{FaultEvent, FaultKind, Schedule};
pub use shrink::shrink as shrink_schedule;
