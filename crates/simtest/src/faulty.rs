//! [`FaultyCrowd`]: a [`CrowdSource`] wrapper that injects a
//! [`Schedule`]'s faults into an otherwise well-behaved crowd.
//!
//! The wrapper is careful never to *corrupt* an answer the engine
//! accepts: drops and timed-out delays return [`Answer::NoResponse`]
//! **without consulting the inner source** (so a retry observes the
//! pristine answer and per-member RNG streams are not perturbed),
//! departures return [`Answer::Unavailable`], and contradictions are
//! logged in the trace but the first (true) answer is what the engine
//! sees. This is what makes the differential oracle exact: on the
//! answered subset, a faulty run must agree with the fault-free run.

use crate::clock::LogicalClock;
use crate::schedule::{FaultEvent, FaultKind, Schedule};
use crowd::{Answer, CrowdSource, MemberId, Question};

/// One observable simulation step, recorded for the determinism digest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Logical tick at which the step completed.
    pub tick: u64,
    /// The member involved.
    pub member: u32,
    /// What happened (`ask`, `drop`, `delay`, `contradict`, `depart`,
    /// `absent`).
    pub kind: &'static str,
    /// Compact human-readable detail (question shape, answer shape).
    pub detail: String,
}

/// The full ordered event trace of a simulated session.
#[derive(Debug, Clone, Default)]
pub struct SimTrace {
    /// Steps in execution order.
    pub entries: Vec<TraceEntry>,
}

impl SimTrace {
    fn push(&mut self, tick: u64, member: MemberId, kind: &'static str, detail: String) {
        self.entries.push(TraceEntry {
            tick,
            member: member.0,
            kind,
            detail,
        });
    }

    /// FNV-1a digest of the rendered trace. Same seed ⇒ same digest,
    /// across runs and pool widths.
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for e in &self.entries {
            for b in format!("{}|{}|{}|{}\n", e.tick, e.member, e.kind, e.detail).bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }
}

/// Compact question shape for trace entries (patterns themselves are too
/// large and too order-sensitive to render).
fn describe_question(q: &Question) -> String {
    match q {
        Question::Concrete { pattern } => format!("concrete[{}]", pattern.len()),
        Question::Specialization { options, .. } => format!("spec[{}]", options.len()),
    }
}

fn describe_answer(a: &Answer) -> String {
    match a {
        Answer::Support { support, .. } => format!("support={support}"),
        Answer::Specialized { choice, support } => format!("choice={choice},support={support}"),
        Answer::NoneOfThese => "none-of-these".into(),
        Answer::Irrelevant { .. } => "irrelevant".into(),
        Answer::Unavailable => "unavailable".into(),
        Answer::NoResponse => "no-response".into(),
    }
}

/// A crowd whose answers pass through a deterministic fault schedule.
pub struct FaultyCrowd<C> {
    inner: C,
    clock: LogicalClock,
    /// Pending fault events, sorted by `(at, member)`; each fires at most
    /// once, on the first ask of its member at or after its tick.
    pending: Vec<FaultEvent>,
    /// Ticks after which a delayed answer counts as lost (should match
    /// the engine's [`crowd::CrowdPolicy::timeout_ticks`]).
    timeout_ticks: u64,
    departed: std::collections::HashSet<u32>,
    /// member → tick until which the member is absent (exclusive).
    absent_until: std::collections::HashMap<u32, u64>,
    trace: SimTrace,
    asked: usize,
    /// Optional telemetry handle. Only tick-neutral events (counters and
    /// `sync_tick`) are recorded here, so attaching a sink never perturbs
    /// the trace digest of the simulated session itself.
    tele: telemetry::Telemetry,
}

impl<C: CrowdSource> FaultyCrowd<C> {
    /// Wraps `inner` with `schedule`, discarding delayed answers that
    /// exceed `timeout_ticks`.
    pub fn new(inner: C, schedule: &Schedule, timeout_ticks: u64) -> Self {
        FaultyCrowd {
            inner,
            clock: LogicalClock::new(),
            pending: schedule.events.clone(),
            timeout_ticks,
            departed: Default::default(),
            absent_until: Default::default(),
            trace: SimTrace::default(),
            asked: 0,
            tele: telemetry::Telemetry::off(),
        }
    }

    /// Attaches a telemetry handle; fault injections are counted under
    /// `sim.*` and the sink's logical tick is kept in sync with the
    /// simulation clock.
    pub fn with_telemetry(mut self, tele: telemetry::Telemetry) -> Self {
        self.tele = tele;
        self
    }

    /// The recorded trace so far.
    pub fn trace(&self) -> &SimTrace {
        &self.trace
    }

    /// The current logical tick.
    pub fn now(&self) -> u64 {
        self.clock.now()
    }

    /// Consumes the wrapper, returning the inner source and the trace.
    pub fn into_parts(self) -> (C, SimTrace) {
        (self.inner, self.trace)
    }

    /// Removes and returns the first due event for `member`, if any.
    /// Cluster faults (partitions, node crashes) share the schedule but
    /// target node indices, not members — they are left pending for the
    /// network scheduler and never fire here.
    fn take_due(&mut self, member: MemberId) -> Option<FaultEvent> {
        let now = self.clock.now();
        let idx = self
            .pending
            .iter()
            .position(|e| e.member == member.0 && e.at <= now && e.kind.is_member_fault())?;
        Some(self.pending.remove(idx))
    }
}

impl<C: CrowdSource> CrowdSource for FaultyCrowd<C> {
    fn members(&self) -> Vec<MemberId> {
        self.inner
            .members()
            .into_iter()
            .filter(|m| !self.departed.contains(&m.0))
            .collect()
    }

    fn ask(&mut self, member: MemberId, question: &Question) -> Answer {
        self.asked += 1;
        let tick = self.clock.advance(1);
        self.tele.sync_tick(tick);
        self.tele.count("sim.asks", 1);
        let q = describe_question(question);
        if self.departed.contains(&member.0) {
            self.tele.count("sim.asks_after_departure", 1);
            self.trace
                .push(tick, member, "depart", format!("{q} after-departure"));
            return Answer::Unavailable;
        }
        if self.absent_until.get(&member.0).is_some_and(|&u| tick < u) {
            self.tele.count("sim.absent_asks", 1);
            self.trace.push(tick, member, "absent", q);
            return Answer::NoResponse;
        }
        match self.take_due(member).map(|e| e.kind) {
            Some(FaultKind::Drop) => {
                // lost in transit: the inner member never sees it, so a
                // retry can still obtain the pristine answer
                self.tele.count("sim.drops", 1);
                self.trace.push(tick, member, "drop", q);
                Answer::NoResponse
            }
            Some(FaultKind::Delay(d)) if d > self.timeout_ticks => {
                self.tele.count("sim.delays_timed_out", 1);
                self.trace
                    .push(tick, member, "delay", format!("{q} late={d} timeout"));
                Answer::NoResponse
            }
            Some(FaultKind::Delay(d)) => {
                let tick = self.clock.advance(d);
                self.tele.sync_tick(tick);
                self.tele.count("sim.delays", 1);
                self.tele.observe("sim.delay_ticks", d);
                let ans = self.inner.ask(member, question);
                self.trace.push(
                    tick,
                    member,
                    "delay",
                    format!("{q} late={d} {}", describe_answer(&ans)),
                );
                ans
            }
            Some(FaultKind::Contradict) => {
                // the member answers truthfully, then sends a contradictory
                // re-answer; the engine's first-accepted-answer-wins rule
                // means only the trace ever sees the contradiction
                self.tele.count("sim.contradictions", 1);
                let ans = self.inner.ask(member, question);
                self.trace.push(
                    tick,
                    member,
                    "contradict",
                    format!("{q} kept={} re-answer-discarded", describe_answer(&ans)),
                );
                ans
            }
            Some(FaultKind::Depart) => {
                self.departed.insert(member.0);
                self.tele.count("sim.departures", 1);
                self.trace.push(tick, member, "depart", q);
                Answer::Unavailable
            }
            Some(FaultKind::Absent(d)) => {
                self.absent_until.insert(member.0, tick + d);
                self.tele.count("sim.absences", 1);
                self.trace
                    .push(tick, member, "absent", format!("{q} for={d}"));
                Answer::NoResponse
            }
            // cluster and server faults are filtered out by `take_due`; a
            // crowd ask proceeds normally even while the network or the
            // server process is faulting
            Some(FaultKind::Partition { .. } | FaultKind::Crash { .. } | FaultKind::ServerKill)
            | None => {
                let ans = self.inner.ask(member, question);
                self.trace.push(
                    tick,
                    member,
                    "ask",
                    format!("{q} {}", describe_answer(&ans)),
                );
                ans
            }
        }
    }

    fn questions_asked(&self) -> usize {
        self.asked
    }

    fn member_has_profile(&self, member: MemberId, label: &str) -> bool {
        self.inner.member_has_profile(member, label)
    }

    // supports_prefetch stays false: the simulation serializes asks on the
    // logical clock, so speculation would only blur the trace.

    fn advance_clock(&mut self, ticks: u64) {
        let now = self.clock.advance(ticks);
        self.tele.sync_tick(now);
        self.inner.advance_clock(ticks);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontology::PatternSet;

    /// A deterministic stub whose answers depend on how many asks it has
    /// *consumed* — so a drop that wrongly consumed the inner answer would
    /// shift every later answer and fail the retry test.
    struct StubCrowd {
        members: usize,
        consumed: usize,
    }

    fn crowd(n: usize) -> StubCrowd {
        StubCrowd {
            members: n,
            consumed: 0,
        }
    }

    impl CrowdSource for StubCrowd {
        fn members(&self) -> Vec<MemberId> {
            (0..self.members as u32).map(MemberId).collect()
        }

        fn ask(&mut self, _member: MemberId, _question: &Question) -> Answer {
            self.consumed += 1;
            Answer::Support {
                support: 1.0 / self.consumed as f64,
                more_tip: None,
            }
        }

        fn questions_asked(&self) -> usize {
            self.consumed
        }
    }

    fn concrete() -> Question {
        Question::Concrete {
            pattern: PatternSet::default(),
        }
    }

    #[test]
    fn fault_free_wrapper_is_transparent() {
        let mut plain = crowd(2);
        let mut wrapped = FaultyCrowd::new(crowd(2), &Schedule::fault_free(), 4);
        for i in 0..6 {
            let m = MemberId(i % 2);
            assert_eq!(plain.ask(m, &concrete()), wrapped.ask(m, &concrete()));
        }
        assert_eq!(wrapped.questions_asked(), 6);
        assert_eq!(wrapped.trace().entries.len(), 6);
    }

    #[test]
    fn drop_preserves_the_inner_answer_for_the_retry() {
        let mut plain = crowd(1);
        let schedule = Schedule::parse("d0@0").unwrap();
        let mut wrapped = FaultyCrowd::new(crowd(1), &schedule, 4);
        assert_eq!(wrapped.ask(MemberId(0), &concrete()), Answer::NoResponse);
        // retry sees exactly what the fault-free crowd would have answered
        // first — the drop never consumed the member's answer
        assert_eq!(
            wrapped.ask(MemberId(0), &concrete()),
            plain.ask(MemberId(0), &concrete())
        );
    }

    #[test]
    fn delay_within_timeout_delivers_late_but_intact() {
        let mut plain = crowd(1);
        let schedule = Schedule::parse("y0@0(3)").unwrap();
        let mut wrapped = FaultyCrowd::new(crowd(1), &schedule, 4);
        assert_eq!(
            wrapped.ask(MemberId(0), &concrete()),
            plain.ask(MemberId(0), &concrete())
        );
        assert_eq!(wrapped.now(), 4); // 1 (ask) + 3 (delay)
    }

    #[test]
    fn delay_past_timeout_is_a_drop() {
        let schedule = Schedule::parse("y0@0(9)").unwrap();
        let mut wrapped = FaultyCrowd::new(crowd(1), &schedule, 4);
        assert_eq!(wrapped.ask(MemberId(0), &concrete()), Answer::NoResponse);
    }

    #[test]
    fn departure_removes_the_member_permanently() {
        let schedule = Schedule::parse("x0@0").unwrap();
        let mut wrapped = FaultyCrowd::new(crowd(2), &schedule, 4);
        assert_eq!(wrapped.members().len(), 2);
        assert_eq!(wrapped.ask(MemberId(0), &concrete()), Answer::Unavailable);
        assert_eq!(wrapped.members(), vec![MemberId(1)]);
        assert_eq!(wrapped.ask(MemberId(0), &concrete()), Answer::Unavailable);
    }

    #[test]
    fn absence_ends_after_the_window() {
        let schedule = Schedule::parse("a0@0(3)").unwrap();
        let mut wrapped = FaultyCrowd::new(crowd(1), &schedule, 4);
        assert_eq!(wrapped.ask(MemberId(0), &concrete()), Answer::NoResponse);
        // still inside the absence window
        assert_eq!(wrapped.ask(MemberId(0), &concrete()), Answer::NoResponse);
        // backoff advances the clock past the window
        wrapped.advance_clock(4);
        assert!(!matches!(
            wrapped.ask(MemberId(0), &concrete()),
            Answer::NoResponse
        ));
    }

    #[test]
    fn contradiction_keeps_the_true_answer() {
        let mut plain = crowd(1);
        let schedule = Schedule::parse("c0@0").unwrap();
        let mut wrapped = FaultyCrowd::new(crowd(1), &schedule, 4);
        assert_eq!(
            wrapped.ask(MemberId(0), &concrete()),
            plain.ask(MemberId(0), &concrete())
        );
        assert_eq!(wrapped.trace().entries[0].kind, "contradict");
    }

    #[test]
    fn trace_digest_is_deterministic() {
        let run = || {
            let schedule = Schedule::generate(7, 2, 20, 6);
            let mut wrapped = FaultyCrowd::new(crowd(2), &schedule, 4);
            for i in 0..10 {
                let _ = wrapped.ask(MemberId(i % 2), &concrete());
            }
            wrapped.trace().digest()
        };
        assert_eq!(run(), run());
    }
}
