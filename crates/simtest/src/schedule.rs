//! Fault schedules: seed-generated, replayable, shrinkable.
//!
//! A schedule is a sorted list of [`FaultEvent`]s on the logical clock.
//! Every schedule round-trips through a one-line textual form
//! ([`Schedule::to_line`] / [`Schedule::parse`]) so a shrunk failing
//! schedule can be pasted into a bug report and replayed exactly.
//!
//! Grammar (comma-separated events, `ok` for the empty schedule):
//!
//! ```text
//! d<member>@<tick>          answer dropped before reaching the member
//! y<member>@<tick>(<d>)     answer delayed by d ticks (timeout if d > policy)
//! c<member>@<tick>          contradictory re-answer logged after the accept
//! x<member>@<tick>          member departs permanently (churn)
//! a<member>@<tick>(<d>)     member absent for d ticks (stalls, then recovers)
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One fault class of the simulation's fault model. Faults only delay or
/// remove answers — they never corrupt an answer the engine accepts, so
/// every accepted answer equals the fault-free answer by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The question (or its answer) is lost; the member never saw it and
    /// a retry can succeed.
    Drop,
    /// The answer arrives `0` ticks late. Within the policy's timeout it
    /// is delivered (late but intact); past it, it is discarded like a
    /// drop.
    Delay(u64),
    /// The member answers normally, then sends a contradictory re-answer
    /// for the same question. The engine keeps the first accepted answer;
    /// the contradiction is only visible in the trace.
    Contradict,
    /// The member leaves permanently (mid-query churn).
    Depart,
    /// The member goes silent for `0` ticks, then recovers — retries with
    /// enough backoff outlast the absence.
    Absent(u64),
}

/// A fault applied to `member` at the first ask at or after tick `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Logical tick the fault becomes due.
    pub at: u64,
    /// The targeted member index.
    pub member: u32,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic fault schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule {
    /// Events sorted by `(at, member)`; at most one fires per ask.
    pub events: Vec<FaultEvent>,
}

impl Schedule {
    /// The empty (fault-free) schedule.
    pub fn fault_free() -> Self {
        Schedule::default()
    }

    /// Whether no fault ever fires.
    pub fn is_fault_free(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates a schedule from `seed`: up to `max_events` events over
    /// `members` members within `horizon` ticks, mixing all five fault
    /// classes. Same seed ⇒ same schedule, forever.
    pub fn generate(seed: u64, members: u32, horizon: u64, max_events: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = if max_events == 0 {
            0
        } else {
            rng.gen_range(0..=max_events)
        };
        let mut events: Vec<FaultEvent> = (0..n)
            .map(|_| {
                let at = rng.gen_range(0..horizon.max(1));
                let member = rng.gen_range(0..members.max(1));
                let kind = match rng.gen_range(0..5u32) {
                    0 => FaultKind::Drop,
                    1 => FaultKind::Delay(rng.gen_range(1..=8)),
                    2 => FaultKind::Contradict,
                    3 => FaultKind::Depart,
                    _ => FaultKind::Absent(rng.gen_range(1..=6)),
                };
                FaultEvent { at, member, kind }
            })
            .collect();
        events.sort_by_key(|e| (e.at, e.member));
        Schedule { events }
    }

    /// The replayable one-line form.
    pub fn to_line(&self) -> String {
        if self.events.is_empty() {
            return "ok".into();
        }
        self.events
            .iter()
            .map(|e| match e.kind {
                FaultKind::Drop => format!("d{}@{}", e.member, e.at),
                FaultKind::Delay(d) => format!("y{}@{}({d})", e.member, e.at),
                FaultKind::Contradict => format!("c{}@{}", e.member, e.at),
                FaultKind::Depart => format!("x{}@{}", e.member, e.at),
                FaultKind::Absent(d) => format!("a{}@{}({d})", e.member, e.at),
            })
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parses [`Self::to_line`] output. Returns `None` on any syntax
    /// error (no partial parses — a replay must be exact).
    pub fn parse(line: &str) -> Option<Self> {
        let line = line.trim();
        if line == "ok" || line.is_empty() {
            return Some(Schedule::fault_free());
        }
        let mut events = Vec::new();
        for tok in line.split(',') {
            let tok = tok.trim();
            let (kind_ch, rest) = tok.split_at(1);
            let (member_tick, arg) = match rest.split_once('(') {
                Some((mt, a)) => (mt, Some(a.strip_suffix(')')?)),
                None => (rest, None),
            };
            let (member, at) = member_tick.split_once('@')?;
            let member: u32 = member.parse().ok()?;
            let at: u64 = at.parse().ok()?;
            let kind = match (kind_ch, arg) {
                ("d", None) => FaultKind::Drop,
                ("y", Some(a)) => FaultKind::Delay(a.parse().ok()?),
                ("c", None) => FaultKind::Contradict,
                ("x", None) => FaultKind::Depart,
                ("a", Some(a)) => FaultKind::Absent(a.parse().ok()?),
                _ => return None,
            };
            events.push(FaultEvent { at, member, kind });
        }
        events.sort_by_key(|e| (e.at, e.member));
        Some(Schedule { events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Schedule::generate(42, 3, 50, 8);
        let b = Schedule::generate(42, 3, 50, 8);
        assert_eq!(a, b);
        assert_ne!(a, Schedule::generate(43, 3, 50, 8));
    }

    #[test]
    fn line_round_trips() {
        for seed in 0..50 {
            let s = Schedule::generate(seed, 4, 40, 10);
            let line = s.to_line();
            let back = Schedule::parse(&line).expect(&line);
            assert_eq!(s, back, "{line}");
        }
        assert_eq!(Schedule::parse("ok").unwrap(), Schedule::fault_free());
        assert!(Schedule::parse("z9@9").is_none());
        assert!(Schedule::parse("y1@2(").is_none());
    }

    #[test]
    fn all_fault_classes_appear_across_seeds() {
        let mut seen = [false; 5];
        for seed in 0..200 {
            for e in Schedule::generate(seed, 4, 40, 10).events {
                let i = match e.kind {
                    FaultKind::Drop => 0,
                    FaultKind::Delay(_) => 1,
                    FaultKind::Contradict => 2,
                    FaultKind::Depart => 3,
                    FaultKind::Absent(_) => 4,
                };
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }
}
