//! Fault schedules: seed-generated, replayable, shrinkable.
//!
//! A schedule is a sorted list of [`FaultEvent`]s on the logical clock.
//! Every schedule round-trips through a one-line textual form
//! ([`Schedule::to_line`] / [`Schedule::parse`]) so a shrunk failing
//! schedule can be pasted into a bug report and replayed exactly.
//!
//! Grammar (comma-separated events, `ok` for the empty schedule):
//!
//! ```text
//! d<member>@<tick>          answer dropped before reaching the member
//! y<member>@<tick>(<d>)     answer delayed by d ticks (timeout if d > policy)
//! c<member>@<tick>          contradictory re-answer logged after the accept
//! x<member>@<tick>          member departs permanently (churn)
//! a<member>@<tick>(<d>)     member absent for d ticks (stalls, then recovers)
//! p<a>|<b>@<tick>(<d>)      cluster link a↔b severed for d ticks (partition)
//! k<node>@<tick>            cluster node crashes and never restarts
//! k<node>@<tick>(<d>)       cluster node crashes, restarts after d ticks
//! s<srv>@<tick>             crowd-mining server process killed at the tick
//! ```
//!
//! The first five classes target crowd *members* and are interpreted by
//! [`crate::faulty::FaultyCrowd`]; the partition/crash classes target
//! cluster *nodes* (the index field is a node index, with the
//! coordinator at index `N` for an `N`-worker cluster) and are
//! interpreted by [`crate::net`]'s message scheduler; the server-kill
//! class targets the long-lived crowd-mining *server* process model and
//! is interpreted by [`crate::recovery`]'s kill/restart/verify harness.
//! All kinds share one schedule line so a shrunk counterexample replays
//! the whole failure, crowd faults and process faults together.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One fault class of the simulation's fault model. Faults only delay or
/// remove answers — they never corrupt an answer the engine accepts, so
/// every accepted answer equals the fault-free answer by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The question (or its answer) is lost; the member never saw it and
    /// a retry can succeed.
    Drop,
    /// The answer arrives `0` ticks late. Within the policy's timeout it
    /// is delivered (late but intact); past it, it is discarded like a
    /// drop.
    Delay(u64),
    /// The member answers normally, then sends a contradictory re-answer
    /// for the same question. The engine keeps the first accepted answer;
    /// the contradiction is only visible in the trace.
    Contradict,
    /// The member leaves permanently (mid-query churn).
    Depart,
    /// The member goes silent for `0` ticks, then recovers — retries with
    /// enough backoff outlast the absence.
    Absent(u64),
    /// Cluster fault: the link between node `member` (the event's index
    /// field) and node `peer` is severed for `1` ticks — messages sent
    /// across it in the window are lost, and retransmission from the
    /// acked watermark closes the gap after the heal.
    Partition {
        /// The other end of the severed link.
        peer: u32,
        /// Ticks the partition lasts.
        dur: u64,
    },
    /// Cluster fault: node `member` crashes at the event tick, losing
    /// its volatile state (send cursor, ack watermark, in-flight
    /// messages) but not its durable op log. With `down = Some(d)` it
    /// restarts `d` ticks later and recovers via the watermark sync
    /// protocol; with `down = None` it never comes back.
    Crash {
        /// Ticks until restart, or `None` for a permanent kill.
        down: Option<u64>,
    },
    /// Server fault: the crowd-mining server process (the event's index
    /// field names the server instance; the single-server harness uses
    /// `0`) dies at the event tick — every durable WAL append at or
    /// after it is lost mid-run. The crash-recovery harness
    /// ([`crate::recovery`]) then restarts the process model over the
    /// surviving WAL prefix, replays it, and checks the recovered
    /// `SemanticOutcome` digests bit-identically.
    ServerKill,
}

impl FaultKind {
    /// Whether this fault targets a crowd member (interpreted by
    /// [`crate::faulty::FaultyCrowd`]) rather than a cluster node
    /// (interpreted by [`crate::net`]) or the server process model
    /// (interpreted by [`crate::recovery`]).
    pub fn is_member_fault(&self) -> bool {
        !matches!(
            self,
            FaultKind::Partition { .. } | FaultKind::Crash { .. } | FaultKind::ServerKill
        )
    }

    /// Whether this fault kills the server process model (interpreted
    /// by [`crate::recovery`]'s kill/restart/verify harness).
    pub fn is_server_fault(&self) -> bool {
        matches!(self, FaultKind::ServerKill)
    }
}

/// A fault applied to `member` at the first ask at or after tick `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Logical tick the fault becomes due.
    pub at: u64,
    /// The targeted member index (for cluster faults: the node index).
    pub member: u32,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic fault schedule.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule {
    /// Events sorted by `(at, member)`; at most one fires per ask.
    pub events: Vec<FaultEvent>,
}

impl Schedule {
    /// The empty (fault-free) schedule.
    pub fn fault_free() -> Self {
        Schedule::default()
    }

    /// Whether no fault ever fires.
    pub fn is_fault_free(&self) -> bool {
        self.events.is_empty()
    }

    /// Generates a schedule from `seed`: up to `max_events` events over
    /// `members` members within `horizon` ticks, mixing all five fault
    /// classes. Same seed ⇒ same schedule, forever.
    pub fn generate(seed: u64, members: u32, horizon: u64, max_events: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = if max_events == 0 {
            0
        } else {
            rng.gen_range(0..=max_events)
        };
        let mut events: Vec<FaultEvent> = (0..n)
            .map(|_| {
                let at = rng.gen_range(0..horizon.max(1));
                let member = rng.gen_range(0..members.max(1));
                let kind = match rng.gen_range(0..5u32) {
                    0 => FaultKind::Drop,
                    1 => FaultKind::Delay(rng.gen_range(1..=8)),
                    2 => FaultKind::Contradict,
                    3 => FaultKind::Depart,
                    _ => FaultKind::Absent(rng.gen_range(1..=6)),
                };
                FaultEvent { at, member, kind }
            })
            .collect();
        events.sort_by_key(|e| (e.at, e.member));
        Schedule { events }
    }

    /// Generates a cluster schedule from `seed`: member faults as in
    /// [`Schedule::generate`], mixed with partition and crash/restart
    /// events over `nodes` worker nodes (the coordinator sits at index
    /// `nodes`, so generated partitions sever worker↔coordinator links).
    /// Same seed ⇒ same schedule, forever.
    pub fn generate_cluster(
        seed: u64,
        members: u32,
        nodes: u32,
        horizon: u64,
        max_events: usize,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC1A5_7E1E_C1A5_7E1E);
        let n = if max_events == 0 {
            0
        } else {
            rng.gen_range(0..=max_events)
        };
        let mut events: Vec<FaultEvent> = (0..n)
            .map(|_| {
                let at = rng.gen_range(0..horizon.max(1));
                match rng.gen_range(0..8u32) {
                    0 => FaultEvent {
                        at,
                        member: rng.gen_range(0..members.max(1)),
                        kind: FaultKind::Drop,
                    },
                    1 => FaultEvent {
                        at,
                        member: rng.gen_range(0..members.max(1)),
                        kind: FaultKind::Delay(rng.gen_range(1..=8)),
                    },
                    2 => FaultEvent {
                        at,
                        member: rng.gen_range(0..members.max(1)),
                        kind: FaultKind::Contradict,
                    },
                    3 => FaultEvent {
                        at,
                        member: rng.gen_range(0..members.max(1)),
                        kind: FaultKind::Absent(rng.gen_range(1..=6)),
                    },
                    // node faults: weighted towards recoverable ones so
                    // most generated schedules still converge
                    4 | 5 => FaultEvent {
                        at,
                        member: rng.gen_range(0..nodes.max(1)),
                        kind: FaultKind::Partition {
                            peer: nodes,
                            dur: rng.gen_range(2..=10),
                        },
                    },
                    6 => FaultEvent {
                        at,
                        member: rng.gen_range(0..nodes.max(1)),
                        kind: FaultKind::Crash {
                            down: Some(rng.gen_range(2..=10)),
                        },
                    },
                    _ => FaultEvent {
                        at,
                        member: rng.gen_range(0..nodes.max(1)),
                        kind: FaultKind::Crash { down: None },
                    },
                }
            })
            .collect();
        events.sort_by_key(|e| (e.at, e.member));
        Schedule { events }
    }

    /// Generates a crash-recovery schedule from `seed`: up to
    /// `max_events` server-kill events at distinct ticks within
    /// `horizon` (each kill cuts one process lifetime, so duplicate
    /// ticks would be redundant). Same seed ⇒ same schedule, forever.
    pub fn generate_recovery(seed: u64, horizon: u64, max_events: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5E4E_C0DE_5E4E_C0DE);
        let n = if max_events == 0 {
            0
        } else {
            rng.gen_range(0..=max_events)
        };
        let mut ticks: Vec<u64> = (0..n).map(|_| rng.gen_range(1..horizon.max(2))).collect();
        ticks.sort_unstable();
        ticks.dedup();
        let events = ticks
            .into_iter()
            .map(|at| FaultEvent {
                at,
                member: 0,
                kind: FaultKind::ServerKill,
            })
            .collect();
        Schedule { events }
    }

    /// The ticks at which the server process model is killed (for
    /// [`crate::recovery`]), in schedule order.
    pub fn server_kills(&self) -> Vec<u64> {
        self.events
            .iter()
            .filter(|e| e.kind.is_server_fault())
            .map(|e| e.at)
            .collect()
    }

    /// Splits the schedule into its member-fault part (for
    /// [`crate::faulty::FaultyCrowd`]) and its node-fault part (for
    /// [`crate::net`]'s message scheduler).
    pub fn split_cluster(&self) -> (Schedule, Schedule) {
        let (member, node): (Vec<FaultEvent>, Vec<FaultEvent>) = self
            .events
            .iter()
            .copied()
            .partition(|e| e.kind.is_member_fault());
        (Schedule { events: member }, Schedule { events: node })
    }

    /// The replayable one-line form.
    pub fn to_line(&self) -> String {
        if self.events.is_empty() {
            return "ok".into();
        }
        self.events
            .iter()
            .map(|e| match e.kind {
                FaultKind::Drop => format!("d{}@{}", e.member, e.at),
                FaultKind::Delay(d) => format!("y{}@{}({d})", e.member, e.at),
                FaultKind::Contradict => format!("c{}@{}", e.member, e.at),
                FaultKind::Depart => format!("x{}@{}", e.member, e.at),
                FaultKind::Absent(d) => format!("a{}@{}({d})", e.member, e.at),
                FaultKind::Partition { peer, dur } => {
                    format!("p{}|{}@{}({dur})", e.member, peer, e.at)
                }
                FaultKind::Crash { down: Some(d) } => format!("k{}@{}({d})", e.member, e.at),
                FaultKind::Crash { down: None } => format!("k{}@{}", e.member, e.at),
                FaultKind::ServerKill => format!("s{}@{}", e.member, e.at),
            })
            .collect::<Vec<_>>()
            .join(",")
    }

    /// Parses [`Self::to_line`] output. Returns `None` on any syntax
    /// error (no partial parses — a replay must be exact).
    pub fn parse(line: &str) -> Option<Self> {
        let line = line.trim();
        if line == "ok" || line.is_empty() {
            return Some(Schedule::fault_free());
        }
        let mut events = Vec::new();
        for tok in line.split(',') {
            let tok = tok.trim();
            let (kind_ch, rest) = tok.split_at(1);
            let (member_tick, arg) = match rest.split_once('(') {
                Some((mt, a)) => (mt, Some(a.strip_suffix(')')?)),
                None => (rest, None),
            };
            let (member, at) = member_tick.split_once('@')?;
            let at: u64 = at.parse().ok()?;
            // the partition index field is `a|b`; every other class is a
            // single member/node index
            let (member, peer) = match member.split_once('|') {
                Some((a, b)) => (a.parse::<u32>().ok()?, Some(b.parse::<u32>().ok()?)),
                None => (member.parse::<u32>().ok()?, None),
            };
            let kind = match (kind_ch, peer, arg) {
                ("d", None, None) => FaultKind::Drop,
                ("y", None, Some(a)) => FaultKind::Delay(a.parse().ok()?),
                ("c", None, None) => FaultKind::Contradict,
                ("x", None, None) => FaultKind::Depart,
                ("a", None, Some(a)) => FaultKind::Absent(a.parse().ok()?),
                ("p", Some(peer), Some(a)) => FaultKind::Partition {
                    peer,
                    dur: a.parse().ok()?,
                },
                ("k", None, Some(a)) => FaultKind::Crash {
                    down: Some(a.parse().ok()?),
                },
                ("k", None, None) => FaultKind::Crash { down: None },
                ("s", None, None) => FaultKind::ServerKill,
                _ => return None,
            };
            events.push(FaultEvent { at, member, kind });
        }
        events.sort_by_key(|e| (e.at, e.member));
        Some(Schedule { events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Schedule::generate(42, 3, 50, 8);
        let b = Schedule::generate(42, 3, 50, 8);
        assert_eq!(a, b);
        assert_ne!(a, Schedule::generate(43, 3, 50, 8));
    }

    #[test]
    fn line_round_trips() {
        for seed in 0..50 {
            let s = Schedule::generate(seed, 4, 40, 10);
            let line = s.to_line();
            let back = Schedule::parse(&line).expect(&line);
            assert_eq!(s, back, "{line}");
        }
        assert_eq!(Schedule::parse("ok").unwrap(), Schedule::fault_free());
        assert!(Schedule::parse("z9@9").is_none());
        assert!(Schedule::parse("y1@2(").is_none());
    }

    #[test]
    fn cluster_lines_round_trip() {
        for seed in 0..50 {
            let s = Schedule::generate_cluster(seed, 4, 4, 40, 10);
            let line = s.to_line();
            let back = Schedule::parse(&line).expect(&line);
            assert_eq!(s, back, "{line}");
        }
        // hand-written cluster tokens, including mixed member/node lines
        let s = Schedule::parse("p0|4@3(5),k2@7,k1@2(6),d0@1").unwrap();
        assert_eq!(s.events.len(), 4);
        assert_eq!(Schedule::parse(&s.to_line()).unwrap(), s);
        let (member, node) = s.split_cluster();
        assert_eq!(member.events.len(), 1);
        assert_eq!(node.events.len(), 3);
        assert!(member.events.iter().all(|e| e.kind.is_member_fault()));
        assert!(node.events.iter().all(|e| !e.kind.is_member_fault()));
        // malformed cluster tokens must not half-parse
        assert!(Schedule::parse("p0@3(5)").is_none()); // partition without peer
        assert!(Schedule::parse("p0|1@3").is_none()); // partition without duration
        assert!(Schedule::parse("k1|2@3").is_none()); // crash with a peer
        assert!(Schedule::parse("d0|1@3").is_none()); // member fault with a peer
    }

    #[test]
    fn recovery_schedules_round_trip_as_pure_server_kills() {
        for seed in 0..50 {
            let s = Schedule::generate_recovery(seed, 14, 4);
            assert_eq!(s, Schedule::generate_recovery(seed, 14, 4));
            let line = s.to_line();
            assert_eq!(Schedule::parse(&line).expect(&line), s, "{line}");
            assert!(s.events.iter().all(|e| e.kind.is_server_fault()));
            assert!(s.events.iter().all(|e| !e.kind.is_member_fault()));
            // one kill per distinct tick: every lifetime cut is real
            let ticks = s.server_kills();
            assert!(ticks.windows(2).all(|w| w[0] < w[1]), "{line}");
        }
        // hand-written mixed lines keep the server kills addressable
        let s = Schedule::parse("s0@3,d1@2,s0@7,k1@4").unwrap();
        assert_eq!(s.server_kills(), vec![3, 7]);
        assert_eq!(Schedule::parse(&s.to_line()).unwrap(), s);
        // malformed server-kill tokens must not half-parse
        assert!(Schedule::parse("s0@3(2)").is_none()); // kill with a duration
        assert!(Schedule::parse("s0|1@3").is_none()); // kill with a peer
        assert!(Schedule::parse("s@3").is_none()); // kill without an index
    }

    #[test]
    fn all_fault_classes_appear_across_seeds() {
        let mut seen = [false; 5];
        for seed in 0..200 {
            for e in Schedule::generate(seed, 4, 40, 10).events {
                let i = match e.kind {
                    FaultKind::Drop => 0,
                    FaultKind::Delay(_) => 1,
                    FaultKind::Contradict => 2,
                    FaultKind::Depart => 3,
                    FaultKind::Absent(_) => 4,
                    other => panic!("generate emitted a cluster fault {other:?}"),
                };
                seen[i] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn cluster_generation_mixes_member_and_node_faults() {
        let mut partitions = false;
        let mut crash_restart = false;
        let mut kill = false;
        let mut member_fault = false;
        for seed in 0..200 {
            let s = Schedule::generate_cluster(seed, 4, 4, 40, 10);
            assert_eq!(s, Schedule::generate_cluster(seed, 4, 4, 40, 10));
            for e in s.events {
                match e.kind {
                    FaultKind::Partition { peer, dur } => {
                        partitions = true;
                        assert_eq!(peer, 4, "generated partitions sever node↔coordinator");
                        assert!(dur > 0);
                    }
                    FaultKind::Crash { down: Some(_) } => crash_restart = true,
                    FaultKind::Crash { down: None } => kill = true,
                    _ => member_fault = true,
                }
            }
        }
        assert!(partitions && crash_restart && kill && member_fault);
    }
}
