//! The logical event clock driving a simulated crowd session.
//!
//! One tick per question asked; the engine's retry backoff advances the
//! clock through [`CrowdSource::advance_clock`](crowd::CrowdSource::advance_clock),
//! so fault windows (delays, absences) interact with the
//! [`CrowdPolicy`](crowd::CrowdPolicy) deterministically — no wall-clock
//! time anywhere.

/// A monotone logical clock. Ticks are abstract: the simulation advances
/// it by one per ask and by the policy's backoff between retries.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogicalClock {
    now: u64,
}

impl LogicalClock {
    /// A clock at tick zero.
    pub fn new() -> Self {
        LogicalClock::default()
    }

    /// The current tick.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances by `ticks` and returns the new time.
    pub fn advance(&mut self, ticks: u64) -> u64 {
        self.now = self.now.saturating_add(ticks);
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone_and_saturating() {
        let mut c = LogicalClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(3), 3);
        assert_eq!(c.advance(0), 3);
        c.advance(u64::MAX);
        assert_eq!(c.now(), u64::MAX);
    }
}
