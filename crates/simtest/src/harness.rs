//! The simulation harness: seed → world → schedule → differential runs.
//!
//! One seed deterministically derives a synthetic world (a planted-MSP
//! DAG and a pure oracle crowd), a fault [`Schedule`], and a
//! [`CrowdPolicy`]. The harness then runs every engine — `run_naive`,
//! `run_vertical`, `run_horizontal` and `run_multi` at pool widths
//! {1, 2, 4, 8} — against the *same* schedule and checks:
//!
//! * **Differential oracle (fault-free):** all engines report the same
//!   MSP set, and it equals the planted ground truth.
//! * **Degradation (faulty):** no engine panics (step-level invariant
//!   checkers are armed via `debug_checks`), question budgets are
//!   respected, the answered subset — reported MSPs and significant
//!   patterns — is a subset of the fault-free outcome, and a non-empty
//!   partial-answer manifest implies `complete == false`.
//! * **Determinism:** re-running the same seed reproduces bit-identical
//!   traces and outcomes, at every pool width.
//!
//! On failure, [`shrink_failure`] minimizes the schedule to a one-line
//! replayable counterexample via [`crate::shrink::shrink`].

// audit: allow-file(D4, sim driver; indices derive from loop bounds over structures it just built)
use crate::faulty::FaultyCrowd;
use crate::schedule::Schedule;
use crate::shrink::shrink;
use crowd::{CrowdPolicy, MemberId};
use oassis_core::synth::{plant_msps, synthetic_domain, MspDistribution, PlantedOracle};
use oassis_core::{
    run_horizontal, run_multi, run_naive, run_vertical, Assignment, Dag, FixedSampleAggregator,
    MiningConfig, MiningOutcome, PartialManifest,
};
use oassis_ql::{bind, evaluate_where, parse, BoundQuery, MatchMode};
use ontology::{PatternSet, Vocabulary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Everything one simulated session needs, all derived from one seed.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// The master seed (world shape, schedule, engine RNG).
    pub seed: u64,
    /// Target width of the synthetic product DAG.
    pub width: usize,
    /// Depth of the synthetic product DAG.
    pub depth: usize,
    /// Number of planted MSPs.
    pub planted: usize,
    /// Crowd size for the multi-user engine.
    pub members: u32,
    /// The fault schedule driven through every engine.
    pub schedule: Schedule,
    /// Crowd-access policy under test.
    pub policy: CrowdPolicy,
    /// Question budget for faulty runs (`None` = unbounded).
    pub budget: Option<usize>,
}

impl SimConfig {
    /// Derives a full configuration from `seed` alone — the only input a
    /// failure report needs to quote.
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD5D5_D5D5_D5D5_D5D5);
        let members = 3;
        let max_events = rng.gen_range(0..=8);
        let schedule = Schedule::generate(seed, members, 40, max_events);
        SimConfig {
            seed,
            width: rng.gen_range(20..=50),
            depth: rng.gen_range(4..=5),
            planted: rng.gen_range(2..=6),
            members,
            schedule,
            policy: CrowdPolicy::default(),
            budget: if rng.gen_bool(0.5) {
                Some(rng.gen_range(300..=600))
            } else {
                None
            },
        }
    }
}

/// The engines under differential test. `Multi(0)` is the sequential
/// pool; other widths exercise the fork-join scans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EngineKind {
    Naive,
    Vertical,
    Horizontal,
    Multi(usize),
}

const ENGINES: [EngineKind; 7] = [
    EngineKind::Naive,
    EngineKind::Vertical,
    EngineKind::Horizontal,
    EngineKind::Multi(0),
    EngineKind::Multi(2),
    EngineKind::Multi(4),
    EngineKind::Multi(8),
];

/// One engine's observable outcome, rendered order-independently.
#[derive(Debug, Clone, PartialEq)]
struct EngineRun {
    msps: Vec<String>,
    significant: Vec<String>,
    questions: usize,
    complete: bool,
    manifest: PartialManifest,
    trace_digest: u64,
}

impl EngineRun {
    fn digest_into(&self, h: &mut u64) {
        let fnv = |h: &mut u64, bytes: &[u8]| {
            for &b in bytes {
                *h ^= b as u64;
                *h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for m in &self.msps {
            fnv(h, m.as_bytes());
        }
        for s in &self.significant {
            fnv(h, s.as_bytes());
        }
        fnv(h, &(self.questions as u64).to_le_bytes());
        fnv(h, &[u8::from(self.complete)]);
        fnv(h, &(self.manifest.timeouts as u64).to_le_bytes());
        fnv(h, &(self.manifest.retries as u64).to_le_bytes());
        fnv(h, &(self.manifest.unanswered.len() as u64).to_le_bytes());
        fnv(h, &self.trace_digest.to_le_bytes());
    }
}

/// The verdict for one seed.
#[derive(Debug)]
pub struct SimReport {
    /// The seed that derives everything.
    pub seed: u64,
    /// The schedule that was driven (replayable via its
    /// [`Schedule::to_line`]).
    pub schedule: Schedule,
    /// Property violations, empty on success.
    pub failures: Vec<String>,
    /// Combined digest over every run's trace and outcome — the value
    /// that must be bit-identical across re-runs of the same seed.
    pub digest: u64,
}

impl SimReport {
    /// Whether every property held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The shared immutable world for one seed: query binding, base facts,
/// planted truth. Shared with the cluster harness (`crate::cluster`).
pub(crate) struct World {
    pub(crate) dom: oassis_core::SyntheticDomain,
    pub(crate) planted_display: Vec<String>,
}

pub(crate) fn build_world(cfg: &SimConfig) -> (World, Vec<PatternSet>) {
    let dom = synthetic_domain(cfg.width, cfg.depth, cfg.seed);
    let q = parse(&dom.query).expect("synthetic query parses");
    let b = bind(&q, &dom.ontology).expect("synthetic query binds");
    let base = evaluate_where(&b, &dom.ontology, MatchMode::Exact);
    let mut full = Dag::new(&b, dom.ontology.vocab(), &base).without_multiplicities();
    full.materialize_all();
    let planted = plant_msps(
        &mut full,
        cfg.planted,
        true,
        MspDistribution::Uniform,
        cfg.seed.wrapping_mul(31).wrapping_add(7),
    );
    let patterns: Vec<PatternSet> = planted
        .iter()
        .map(|&id| full.node(id).assignment.apply(&b))
        .collect();
    let mut planted_display: Vec<String> = patterns
        .iter()
        .map(|p| p.to_display(dom.ontology.vocab()))
        .collect();
    planted_display.sort();
    drop(full);
    (
        World {
            dom,
            planted_display,
        },
        patterns,
    )
}

#[allow(clippy::too_many_arguments)]
fn run_engine(
    engine: EngineKind,
    b: &BoundQuery,
    vocab: &Vocabulary,
    base: &[oassis_ql::BaseAssignment],
    patterns: &[PatternSet],
    cfg: &SimConfig,
    schedule: &Schedule,
    budget: Option<usize>,
    tele: &telemetry::Telemetry,
) -> Result<EngineRun, String> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut dag = Dag::new(b, vocab, base).without_multiplicities();
        if matches!(engine, EngineKind::Naive | EngineKind::Horizontal) {
            // the baselines walk a pre-materialized DAG (the paper feeds
            // them the full assignment set); vertical and multi generate
            // lazily
            dag.materialize_all();
        }
        let members = match engine {
            EngineKind::Multi(_) => cfg.members as usize,
            _ => 1,
        };
        let oracle = PlantedOracle::new(vocab, patterns.to_vec(), members, cfg.seed);
        let mut crowd = FaultyCrowd::new(oracle, schedule, cfg.policy.timeout_ticks)
            .with_telemetry(tele.clone());
        let mining_cfg = MiningConfig {
            specialization_ratio: 0.25,
            seed: cfg.seed,
            max_questions: budget,
            pool: match engine {
                EngineKind::Multi(w) if w > 0 => minipool::Pool::new(w),
                _ => minipool::Pool::sequential(),
            },
            policy: cfg.policy,
            debug_checks: true,
            telemetry: tele.clone(),
            ..Default::default()
        };
        let out: MiningOutcome = match engine {
            EngineKind::Naive => run_naive(&mut dag, &mut crowd, MemberId(0), &mining_cfg),
            EngineKind::Vertical => run_vertical(&mut dag, &mut crowd, MemberId(0), &mining_cfg),
            EngineKind::Horizontal => {
                run_horizontal(&mut dag, &mut crowd, MemberId(0), &mining_cfg)
            }
            EngineKind::Multi(_) => {
                let agg = FixedSampleAggregator { sample_size: 1 };
                run_multi(&mut dag, &mut crowd, &agg, &mining_cfg).mining
            }
        };
        let disp = |a: &Assignment| a.apply(b).to_display(vocab);
        let mut msps: Vec<String> = out.msps.iter().map(disp).collect();
        msps.sort();
        let mut significant: Vec<String> = out.significant_valid.iter().map(disp).collect();
        significant.sort();
        EngineRun {
            msps,
            significant,
            questions: out.questions,
            complete: out.complete,
            manifest: out.manifest,
            trace_digest: crowd.trace().digest(),
        }
    }));
    result.map_err(|e| {
        e.downcast_ref::<String>()
            .cloned()
            .or_else(|| e.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "panic (non-string payload)".into())
    })
}

fn is_subset(sub: &[String], sup: &[String]) -> bool {
    sub.iter().all(|x| sup.binary_search(x).is_ok())
}

/// Runs every engine against `schedule` (overriding the one in `cfg`) and
/// checks all simulation properties. This is the replay entry point the
/// shrinker drives.
pub fn run_with_schedule(cfg: &SimConfig, schedule: &Schedule) -> SimReport {
    let (world, patterns) = build_world(cfg);
    let vocab = world.dom.ontology.vocab();
    let q = parse(&world.dom.query).expect("synthetic query parses");
    let b = bind(&q, &world.dom.ontology).expect("synthetic query binds");
    let base = evaluate_where(&b, &world.dom.ontology, MatchMode::Exact);

    let mut failures: Vec<String> = Vec::new();
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    let fault_free = Schedule::fault_free();

    // Phase 1 — differential oracle on the fault-free schedule: every
    // engine agrees with the planted ground truth (and hence with every
    // other engine).
    let off = telemetry::Telemetry::off();
    let mut reference: Option<EngineRun> = None;
    for &engine in &ENGINES {
        match run_engine(
            engine,
            &b,
            vocab,
            &base,
            &patterns,
            cfg,
            &fault_free,
            None,
            &off,
        ) {
            Ok(run) => {
                if run.msps != world.planted_display {
                    failures.push(format!(
                        "{engine:?} fault-free MSPs {:?} != planted {:?}",
                        run.msps, world.planted_display
                    ));
                }
                if !run.complete {
                    failures.push(format!("{engine:?} fault-free run incomplete"));
                }
                if !run.manifest.is_empty() {
                    failures.push(format!(
                        "{engine:?} fault-free manifest non-empty: {:?}",
                        run.manifest
                    ));
                }
                match &reference {
                    None => reference = Some(run),
                    Some(r) => {
                        if run.significant != r.significant {
                            failures.push(format!(
                                "{engine:?} fault-free significant set diverges from Naive's"
                            ));
                        }
                    }
                }
            }
            Err(p) => failures.push(format!("{engine:?} fault-free panicked: {p}")),
        }
    }
    let reference = reference.expect("at least one engine ran");

    // Phase 2 — the faulty schedule: graceful degradation + determinism.
    for &engine in &ENGINES {
        let first = run_engine(
            engine, &b, vocab, &base, &patterns, cfg, schedule, cfg.budget, &off,
        );
        let second = run_engine(
            engine, &b, vocab, &base, &patterns, cfg, schedule, cfg.budget, &off,
        );
        match (first, second) {
            (Ok(run), Ok(rerun)) => {
                if run != rerun {
                    failures.push(format!(
                        "{engine:?} non-deterministic replay: {run:?} vs {rerun:?}"
                    ));
                }
                if let Some(budget) = cfg.budget {
                    if run.questions > budget {
                        failures.push(format!(
                            "{engine:?} exceeded budget: {} > {budget}",
                            run.questions
                        ));
                    }
                }
                if !is_subset(&run.msps, &reference.msps) {
                    failures.push(format!(
                        "{engine:?} faulty MSPs {:?} not a subset of fault-free {:?}",
                        run.msps, reference.msps
                    ));
                }
                if !is_subset(&run.significant, &reference.significant) {
                    failures.push(format!(
                        "{engine:?} faulty significant set escapes the fault-free one"
                    ));
                }
                if !run.manifest.unanswered.is_empty() && run.complete {
                    failures.push(format!(
                        "{engine:?} reported complete with {} unanswered patterns",
                        run.manifest.unanswered.len()
                    ));
                }
                run.digest_into(&mut digest);
            }
            (Err(p), _) | (_, Err(p)) => {
                failures.push(format!(
                    "{engine:?} panicked under {}: {p}",
                    schedule.to_line()
                ));
            }
        }
    }

    SimReport {
        seed: cfg.seed,
        schedule: schedule.clone(),
        failures,
        digest,
    }
}

/// Derives the configuration for `seed` and runs the full property
/// check.
pub fn run_seed(seed: u64) -> SimReport {
    let cfg = SimConfig::from_seed(seed);
    let schedule = cfg.schedule.clone();
    run_with_schedule(&cfg, &schedule)
}

/// Runs a corpus of consecutive seeds, returning only the failing
/// reports (each already shrunk to a minimal schedule).
pub fn run_corpus(seeds: std::ops::Range<u64>) -> Vec<SimReport> {
    seeds
        .filter_map(|seed| {
            let report = run_seed(seed);
            if report.passed() {
                None
            } else {
                Some(shrink_failure(seed).unwrap_or(report))
            }
        })
        .collect()
}

/// Replays `seed`'s derived faulty schedule through the multi-user
/// engine with a recording [`telemetry::TelemetrySink`] attached to both
/// the engine and the [`FaultyCrowd`] wrapper, returning the sink.
///
/// The resulting trace is replayable: spans carry logical ticks synced
/// to the simulation clock, fault injections appear as `sim.*` counters
/// and the engine's retry machinery as `crowd.*` counters. Serialize it
/// with [`telemetry::TelemetrySink::write_jsonl`].
pub fn record_seed_trace(seed: u64, pool_width: usize) -> std::sync::Arc<telemetry::TelemetrySink> {
    let cfg = SimConfig::from_seed(seed);
    let (world, patterns) = build_world(&cfg);
    let vocab = world.dom.ontology.vocab();
    let q = parse(&world.dom.query).expect("synthetic query parses");
    let b = bind(&q, &world.dom.ontology).expect("synthetic query binds");
    let base = evaluate_where(&b, &world.dom.ontology, MatchMode::Exact);
    let sink = telemetry::TelemetrySink::shared();
    let tele = telemetry::Telemetry::recording(&sink);
    run_engine(
        EngineKind::Multi(pool_width),
        &b,
        vocab,
        &base,
        &patterns,
        &cfg,
        &cfg.schedule,
        cfg.budget,
        &tele,
    )
    .expect("recorded simulation run does not panic");
    sink
}

/// If `seed` fails, shrinks its schedule to a 1-minimal failing one and
/// returns the (still failing) report for it; `None` if the seed passes.
pub fn shrink_failure(seed: u64) -> Option<SimReport> {
    let cfg = SimConfig::from_seed(seed);
    let schedule = cfg.schedule.clone();
    if run_with_schedule(&cfg, &schedule).passed() {
        return None;
    }
    let minimal = shrink(&schedule, |s| !run_with_schedule(&cfg, s).passed());
    Some(run_with_schedule(&cfg, &minimal))
}
