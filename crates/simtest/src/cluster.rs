//! The differential shard-equivalence oracle.
//!
//! One seed derives a world, a member→shard map and a cluster fault
//! [`Schedule`]; each shard node runs the multi-user engine over its
//! member partition on its own DAG replica; the resulting op logs flow
//! through [`crate::net`]'s seeded network into a
//! [`Coordinator`] merge. The oracle then checks, per seed × shard
//! count × schedule:
//!
//! * **Fault-free equivalence (the headline):** the merged cluster
//!   outcome is **bit-identical** — same [`SemanticOutcome`], same
//!   digest — to the single-node `run_multi` over the whole crowd, for
//!   every shard count and any member→shard map, and both equal the
//!   planted ground truth.
//! * **Net-fault neutrality:** a schedule with only node faults
//!   (partitions, crash/restart) that still delivers every op must
//!   merge to the same digest — reordering, gaps, retransmission and
//!   watermark recovery are invisible to the merge.
//! * **Degradation:** any faulty run must not panic, must be
//!   deterministic under replay, and its merged MSP/valid sets must be
//!   subsets of the fault-free outcome (with `total_valid` bounded by
//!   it).
//!
//! Failures shrink to a 1-minimal schedule via [`crate::shrink`], like
//! the single-node harness.

use crate::faulty::FaultyCrowd;
use crate::harness::{build_world, SimConfig};
use crate::net::{run_net, NetConfig, NetStats};
use crate::schedule::Schedule;
use crate::shrink::shrink;
use oassis_core::cluster::{to_wire, Coordinator, SemanticOutcome, ShardCrowd, ShardMap};
use oassis_core::{run_multi, Dag, FixedSampleAggregator, MiningConfig, PlantedOracle};
use oassis_ql::{bind, evaluate_where, parse, MatchMode};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A cluster session: the single-node [`SimConfig`] world plus a shard
/// count. The schedule inside `sim` is a *cluster* schedule (member and
/// node faults mixed, split at run time).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// World derivation, engine policy and the cluster fault schedule.
    pub sim: SimConfig,
    /// Worker node count (the coordinator sits at index `shards`).
    pub shards: u32,
    /// Seed for delivery jitter — independent of the world seed so
    /// property tests can shuffle delivery orders over a fixed world.
    pub net_seed: u64,
}

/// Crowd size used by cluster sessions — large enough that every shard
/// count in {1, 2, 4, 8} still gets a non-trivial partition.
pub const CLUSTER_MEMBERS: u32 = 8;

impl ClusterConfig {
    /// Derives a full cluster session from `(seed, shards)` — the only
    /// inputs a failure report needs to quote.
    pub fn from_seed(seed: u64, shards: u32) -> ClusterConfig {
        let mut sim = SimConfig::from_seed(seed);
        sim.members = CLUSTER_MEMBERS;
        sim.schedule = Schedule::generate_cluster(seed, CLUSTER_MEMBERS, shards, 40, 8);
        // per-node budgets would make outcomes depend on the shard count
        // by construction; the cluster oracle keeps questions unbounded
        sim.budget = None;
        ClusterConfig {
            sim,
            shards,
            net_seed: seed,
        }
    }
}

/// One merged cluster execution, everything the oracle compares.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterRun {
    /// The merged, replica-independent outcome.
    pub outcome: SemanticOutcome,
    /// [`SemanticOutcome::digest`] of `outcome` — the cluster golden.
    pub digest: u64,
    /// What the simulated network did.
    pub net: NetStats,
    /// Questions asked across all shard nodes.
    pub questions: usize,
    /// Engine rounds summed across shard nodes.
    pub rounds: usize,
    /// Ops accepted by the coordinator.
    pub merge_ops: u64,
    /// Shard nodes that owned at least one member.
    pub nonempty_nodes: usize,
    /// Of those, how many completed their run.
    pub complete_nodes: usize,
}

/// Runs one cluster session under `schedule` (overriding the one in
/// `cfg.sim`): engines per shard, wire, merge. `Err` carries a panic
/// message — any panic anywhere in the cluster is an oracle failure.
pub fn run_cluster(
    cfg: &ClusterConfig,
    map: &ShardMap,
    schedule: &Schedule,
    tele: &telemetry::Telemetry,
) -> Result<ClusterRun, String> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let (world, patterns) = build_world(&cfg.sim);
        let vocab = world.dom.ontology.vocab();
        let q = parse(&world.dom.query).expect("synthetic query parses"); // PANIC-OK: synthetic domain built by this module always parses
        let b = bind(&q, &world.dom.ontology).expect("synthetic query binds"); // PANIC-OK: synthetic domain built by this module always binds
        let base = evaluate_where(&b, &world.dom.ontology, MatchMode::Exact);
        let (member_faults, node_faults) = schedule.split_cluster();
        let agg = FixedSampleAggregator { sample_size: 1 };

        // each shard node mines its member partition on its own replica;
        // node faults never touch the engines (a crashed node recovers
        // deterministically from its durable log), only dissemination
        let mut logs = Vec::with_capacity(cfg.shards as usize);
        let mut threshold = None;
        let (mut questions, mut rounds) = (0usize, 0usize);
        let (mut nonempty, mut complete) = (0usize, 0usize);
        for node in 0..cfg.shards {
            let own = map.members_of(node);
            if own.is_empty() {
                logs.push(Vec::new());
                continue;
            }
            nonempty += 1;
            let node_tele = tele.labeled(&format!("node{node}"));
            let span = node_tele.span_with("engine", &format!("members={}", own.len()));
            let mut dag = Dag::new(&b, vocab, &base).without_multiplicities();
            let oracle = PlantedOracle::new(
                vocab,
                patterns.clone(),
                cfg.sim.members as usize,
                cfg.sim.seed,
            );
            let mut crowd = FaultyCrowd::new(
                ShardCrowd::new(oracle, own),
                &member_faults,
                cfg.sim.policy.timeout_ticks,
            );
            let mining_cfg = MiningConfig {
                specialization_ratio: 0.25,
                seed: cfg.sim.seed,
                max_questions: cfg.sim.budget,
                policy: cfg.sim.policy,
                debug_checks: true,
                telemetry: span.tele().clone(),
                ..Default::default()
            };
            let out = run_multi(&mut dag, &mut crowd, &agg, &mining_cfg);
            questions += out.mining.questions;
            rounds += out.rounds;
            complete += usize::from(out.mining.complete);
            threshold.get_or_insert(out.mining.ops.threshold());
            logs.push(to_wire(&out.mining.ops, &dag));
        }

        // dissemination: seeded jitter, partitions, crash/restart
        let mut coord = Coordinator::new(cfg.shards, threshold.unwrap_or(b.threshold), true);
        let net_cfg = NetConfig::new(cfg.shards, cfg.net_seed);
        let net = run_net(&logs, &mut coord, &node_faults, &net_cfg, tele);

        // merge on a fresh coordinator replica (the stale-DAG shape:
        // every op is interned at merge time, not at its own tick)
        let mut coord_dag = Dag::new(&b, vocab, &base).without_multiplicities();
        let pool = minipool::Pool::sequential();
        let merged_complete = nonempty == complete && net.fully_delivered;
        let merged = coord.merge(&mut coord_dag, &agg, &pool, tele, merged_complete);
        let outcome = SemanticOutcome::from_replay(&merged, &b, vocab);
        ClusterRun {
            digest: outcome.digest(),
            outcome,
            merge_ops: coord.merge_ops(),
            net,
            questions,
            rounds,
            nonempty_nodes: nonempty,
            complete_nodes: complete,
        }
    }));
    result.map_err(|e| {
        e.downcast_ref::<String>()
            .cloned()
            .or_else(|| e.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "panic (non-string payload)".into())
    })
}

/// The single-node reference: `run_multi` over the whole crowd,
/// fault-free, on one DAG. Returns the semantic outcome plus the sorted
/// planted ground truth its MSPs must equal.
pub fn single_node_reference(
    cfg: &ClusterConfig,
) -> Result<(SemanticOutcome, Vec<String>), String> {
    let result = catch_unwind(AssertUnwindSafe(|| {
        let (world, patterns) = build_world(&cfg.sim);
        let vocab = world.dom.ontology.vocab();
        let q = parse(&world.dom.query).expect("synthetic query parses"); // PANIC-OK: synthetic domain built by this module always parses
        let b = bind(&q, &world.dom.ontology).expect("synthetic query binds"); // PANIC-OK: synthetic domain built by this module always binds
        let base = evaluate_where(&b, &world.dom.ontology, MatchMode::Exact);
        let mut dag = Dag::new(&b, vocab, &base).without_multiplicities();
        let oracle = PlantedOracle::new(
            vocab,
            patterns.clone(),
            cfg.sim.members as usize,
            cfg.sim.seed,
        );
        let fault_free = Schedule::fault_free();
        let mut crowd = FaultyCrowd::new(oracle, &fault_free, cfg.sim.policy.timeout_ticks);
        let mining_cfg = MiningConfig {
            specialization_ratio: 0.25,
            seed: cfg.sim.seed,
            policy: cfg.sim.policy,
            debug_checks: true,
            ..Default::default()
        };
        let agg = FixedSampleAggregator { sample_size: 1 };
        let out = run_multi(&mut dag, &mut crowd, &agg, &mining_cfg);
        (
            SemanticOutcome::from_mining(&out.mining, &b, vocab),
            world.planted_display,
        )
    }));
    result.map_err(|e| {
        e.downcast_ref::<String>()
            .cloned()
            .or_else(|| e.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_else(|| "panic (non-string payload)".into())
    })
}

/// The verdict for one `(seed, shards)` pair.
#[derive(Debug)]
pub struct ClusterReport {
    /// The seed that derives everything.
    pub seed: u64,
    /// Worker node count.
    pub shards: u32,
    /// The cluster schedule that was driven.
    pub schedule: Schedule,
    /// Property violations, empty on success.
    pub failures: Vec<String>,
    /// The fault-free cluster digest (the golden the bench gates on).
    pub fault_free_digest: u64,
}

impl ClusterReport {
    /// Whether every property held.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

fn is_subset(sub: &[String], sup: &[String]) -> bool {
    sub.iter().all(|x| sup.binary_search(x).is_ok())
}

/// Runs the full oracle for `cfg` with the round-robin map and
/// `schedule` as the faulty phase. This is the replay entry point the
/// shrinker drives.
pub fn run_cluster_with_schedule(cfg: &ClusterConfig, schedule: &Schedule) -> ClusterReport {
    let map = ShardMap::round_robin(cfg.sim.members, cfg.shards);
    let off = telemetry::Telemetry::off();
    let mut failures = Vec::new();
    let mut fault_free_digest = 0u64;

    // Phase 1 — fault-free differential equivalence vs the single node.
    match (
        single_node_reference(cfg),
        run_cluster(cfg, &map, &Schedule::fault_free(), &off),
    ) {
        (Ok((reference, planted)), Ok(ff)) => {
            let ref_digest = reference.digest();
            fault_free_digest = ff.digest;
            if reference.msps != planted {
                failures.push(format!(
                    "single-node MSPs {:?} != planted {planted:?}",
                    reference.msps
                ));
            }
            if ff.outcome != reference || ff.digest != ref_digest {
                failures.push(format!(
                    "fault-free cluster (N={}) diverges from single node: \
                     {:?} (digest {:#x}) vs {:?} (digest {:#x})",
                    cfg.shards, ff.outcome, ff.digest, reference, ref_digest
                ));
            }
            if !ff.outcome.complete {
                failures.push(format!("fault-free cluster (N={}) incomplete", cfg.shards));
            }
            if !ff.net.fully_delivered || !ff.net.restarts.is_empty() {
                failures.push(format!(
                    "fault-free net session lost something: {:?}",
                    ff.net
                ));
            }

            // Phase 2 — the faulty schedule: determinism + degradation.
            let first = run_cluster(cfg, &map, schedule, &off);
            let second = run_cluster(cfg, &map, schedule, &off);
            match (first, second) {
                (Ok(run), Ok(rerun)) => {
                    if run != rerun {
                        failures.push(format!(
                            "non-deterministic cluster replay: {run:?} vs {rerun:?}"
                        ));
                    }
                    if !is_subset(&run.outcome.msps, &reference.msps) {
                        failures.push(format!(
                            "faulty merged MSPs {:?} escape the fault-free set {:?}",
                            run.outcome.msps, reference.msps
                        ));
                    }
                    if !is_subset(&run.outcome.valid_msps, &reference.valid_msps) {
                        failures.push(format!(
                            "faulty merged valid MSPs {:?} escape the fault-free set {:?}",
                            run.outcome.valid_msps, reference.valid_msps
                        ));
                    }
                    if run.outcome.total_valid > reference.total_valid {
                        failures.push(format!(
                            "faulty merge classified {} valid > fault-free {}",
                            run.outcome.total_valid, reference.total_valid
                        ));
                    }
                    // node faults never change what was mined — only
                    // whether it all arrived; full delivery ⇒ same digest
                    let (member_faults, _) = schedule.split_cluster();
                    if member_faults.events.is_empty()
                        && run.net.fully_delivered
                        && run.digest != ref_digest
                    {
                        failures.push(format!(
                            "net-fault-only schedule fully delivered but digest \
                             {:#x} != fault-free {ref_digest:#x} under {}",
                            run.digest,
                            schedule.to_line()
                        ));
                    }
                }
                (Err(p), _) | (_, Err(p)) => {
                    failures.push(format!(
                        "cluster panicked under {}: {p}",
                        schedule.to_line()
                    ));
                }
            }
        }
        (Err(p), _) => failures.push(format!("single-node reference panicked: {p}")),
        (_, Err(p)) => failures.push(format!("fault-free cluster panicked: {p}")),
    }

    ClusterReport {
        seed: cfg.sim.seed,
        shards: cfg.shards,
        schedule: schedule.clone(),
        failures,
        fault_free_digest,
    }
}

/// Derives the configuration for `(seed, shards)` and runs the full
/// property check.
pub fn run_cluster_seed(seed: u64, shards: u32) -> ClusterReport {
    let cfg = ClusterConfig::from_seed(seed, shards);
    let schedule = cfg.sim.schedule.clone();
    run_cluster_with_schedule(&cfg, &schedule)
}

/// If `(seed, shards)` fails, shrinks its cluster schedule to a
/// 1-minimal failing one (ddmin over mixed member/node fault tokens)
/// and returns the still-failing report; `None` if it passes.
pub fn shrink_cluster_failure(seed: u64, shards: u32) -> Option<ClusterReport> {
    let cfg = ClusterConfig::from_seed(seed, shards);
    let schedule = cfg.sim.schedule.clone();
    if run_cluster_with_schedule(&cfg, &schedule).passed() {
        return None;
    }
    let minimal = shrink(&schedule, |s| !run_cluster_with_schedule(&cfg, s).passed());
    Some(run_cluster_with_schedule(&cfg, &minimal))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_zero_passes_at_every_shard_count() {
        for shards in [1, 2, 4, 8] {
            let report = run_cluster_seed(0, shards);
            assert!(
                report.passed(),
                "N={shards}: {:?} under {}",
                report.failures,
                report.schedule.to_line()
            );
        }
    }

    #[test]
    fn fault_free_digest_is_shard_count_invariant() {
        let mut digests = Vec::new();
        for shards in [1, 2, 4, 8] {
            let report = run_cluster_seed(1, shards);
            assert!(report.passed(), "N={shards}: {:?}", report.failures);
            digests.push(report.fault_free_digest);
        }
        assert!(
            digests.windows(2).all(|w| w[0] == w[1]),
            "digests differ across shard counts: {digests:?}"
        );
    }

    #[test]
    fn skewed_maps_are_equivalent_too() {
        let cfg = ClusterConfig::from_seed(3, 4);
        let off = telemetry::Telemetry::off();
        let (reference, _) = single_node_reference(&cfg).unwrap();
        // everything on one node, plus empty shards
        let skewed = ShardMap::from_assignments(vec![2; CLUSTER_MEMBERS as usize], 4).unwrap();
        let run = run_cluster(&cfg, &skewed, &Schedule::fault_free(), &off).unwrap();
        assert_eq!(run.outcome, reference);
        assert_eq!(run.nonempty_nodes, 1);
    }
}
