//! Abstract syntax tree of OASSIS-QL queries, plus the canonical
//! pretty-printer (`Display`).

use std::fmt;

/// A parsed OASSIS-QL query (Section 3).
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// The `SELECT` statement (line 1 of Figure 2).
    pub select: SelectClause,
    /// `ASKING "label"`: restrict the crowd to members carrying the
    /// profile label — Section 8's "selecting the crowd members, which can
    /// be done by adding a special SPARQL-like selection on crowd members
    /// to OASSIS-QL".
    pub asking: Option<String>,
    /// The `WHERE` statement: the selection over the ontology.
    pub where_patterns: Vec<TriplePattern>,
    /// The `SATISFYING` statement: the patterns mined from the crowd.
    pub satisfying: SatisfyingClause,
}

/// The `SELECT` statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelectClause {
    /// Requested output format.
    pub format: OutputFormat,
    /// `ALL`: return all significant patterns, not just the MSPs.
    pub all: bool,
    /// `TOP k`: stop after the first `k` valid MSPs have been identified —
    /// the "retrieving only the top-k query answers" extension the paper
    /// lists as future work (Sections 1 and 8).
    pub top: Option<usize>,
    /// `DIVERSE` (with `TOP k`): return `k` mutually diverse answers
    /// (the "diversified answers" extension of Section 8).
    pub diverse: bool,
}

/// Requested answer format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputFormat {
    /// `SELECT FACT-SETS`: answers as fact-sets in RDF notation.
    FactSets,
    /// `SELECT VARIABLES`: answers as variable assignments.
    Variables,
}

/// The `SATISFYING` statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SatisfyingClause {
    /// The meta–fact-set to mine.
    pub patterns: Vec<TriplePattern>,
    /// Whether the `MORE` keyword was present ("plus other relevant
    /// advice": any number of unrestricted co-occurring facts).
    pub more: bool,
    /// `IMPLYING` meta-facts — the *head* of an association rule. The
    /// query then mines rules `A_SAT ⇒ A_IMP` ("mining association rules"
    /// is described in the paper's language guide and listed in Section 8).
    pub implying: Vec<TriplePattern>,
    /// The `WITH SUPPORT = θ` threshold (on `A_SAT ∪ A_IMP` for rules).
    pub support_threshold: f64,
    /// The `AND CONFIDENCE = c` threshold (required iff `IMPLYING` is
    /// present): `supp(A_SAT ∪ A_IMP) / supp(A_SAT) ≥ c`.
    pub confidence_threshold: Option<f64>,
}

/// One triple pattern, e.g. `$y+ doAt $x` or `$w subClassOf* Attraction`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TriplePattern {
    /// Subject term.
    pub subject: Term,
    /// Predicate.
    pub predicate: Pred,
    /// Object term.
    pub object: Term,
}

/// A subject/object term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Term {
    /// A variable `$x`, with its multiplicity annotation (meaningful only
    /// in the `SATISFYING` clause; defaults to exactly one).
    Var {
        /// Variable name without the `$` sigil.
        name: String,
        /// Multiplicity annotation attached at this occurrence.
        mult: Multiplicity,
    },
    /// A constant element name, bare (`NYC`) or quoted (`"Tel Aviv"`).
    Elem(String),
    /// A quoted string literal (only meaningful as a `hasLabel` object).
    Literal(String),
    /// `[]` — "anything, as long as one exists".
    Blank,
}

impl Term {
    /// Convenience constructor for a plain variable.
    pub fn var(name: &str) -> Term {
        Term::Var {
            name: name.to_owned(),
            mult: Multiplicity::ExactlyOne,
        }
    }

    /// Convenience constructor for a constant element.
    pub fn elem(name: &str) -> Term {
        Term::Elem(name.to_owned())
    }
}

/// A predicate position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pred {
    /// A relation name, optionally with the `*` path quantifier
    /// (`subClassOf*`: a path of 0 or more facts with that relation).
    Rel {
        /// Relation name.
        name: String,
        /// Whether the `*` path quantifier is attached.
        star: bool,
    },
    /// A relation variable `$p`.
    Var(String),
}

impl Pred {
    /// Convenience constructor for a plain relation predicate.
    pub fn rel(name: &str) -> Pred {
        Pred::Rel {
            name: name.to_owned(),
            star: false,
        }
    }
}

/// Multiplicity annotation on a `SATISFYING` variable (Section 3,
/// "Advanced features"). The semantics assigns **sets** of values to the
/// variable instead of single values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Multiplicity {
    /// Default: exactly one value.
    #[default]
    ExactlyOne,
    /// `+`: at least one value.
    AtLeastOne,
    /// `*`: any number of values (including zero).
    Any,
    /// `?`: optional — zero or one value.
    Optional,
}

impl Multiplicity {
    /// Minimum number of values the variable must take.
    pub fn min(self) -> usize {
        match self {
            Multiplicity::ExactlyOne | Multiplicity::AtLeastOne => 1,
            Multiplicity::Any | Multiplicity::Optional => 0,
        }
    }

    /// Maximum number of values (`None` = unbounded).
    pub fn max(self) -> Option<usize> {
        match self {
            Multiplicity::ExactlyOne | Multiplicity::Optional => Some(1),
            Multiplicity::AtLeastOne | Multiplicity::Any => None,
        }
    }

    /// The annotation's surface syntax (empty for the default).
    pub fn suffix(self) -> &'static str {
        match self {
            Multiplicity::ExactlyOne => "",
            Multiplicity::AtLeastOne => "+",
            Multiplicity::Any => "*",
            Multiplicity::Optional => "?",
        }
    }
}

fn needs_quotes(name: &str) -> bool {
    name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-')
        || name.chars().next().is_some_and(|c| c.is_ascii_digit())
}

fn write_name(f: &mut fmt::Formatter<'_>, name: &str) -> fmt::Result {
    if needs_quotes(name) {
        write!(f, "\"{name}\"")
    } else {
        f.write_str(name)
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var { name, mult } => write!(f, "${name}{}", mult.suffix()),
            Term::Elem(name) => write_name(f, name),
            Term::Literal(s) => write!(f, "\"{s}\""),
            Term::Blank => f.write_str("[]"),
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pred::Rel { name, star } => {
                write_name(f, name)?;
                if *star {
                    f.write_str("*")?;
                }
                Ok(())
            }
            Pred::Var(name) => write!(f, "${name}"),
        }
    }
}

impl fmt::Display for TriplePattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.subject, self.predicate, self.object)
    }
}

impl fmt::Display for Query {
    /// Canonical source form; `parse(q.to_string())` reproduces `q`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let fmt_name = match self.select.format {
            OutputFormat::FactSets => "FACT-SETS",
            OutputFormat::Variables => "VARIABLES",
        };
        write!(
            f,
            "SELECT {}{}",
            fmt_name,
            if self.select.all { " ALL" } else { "" }
        )?;
        if let Some(k) = self.select.top {
            write!(f, " TOP {k}")?;
            if self.select.diverse {
                write!(f, " DIVERSE")?;
            }
        }
        writeln!(f)?;
        if let Some(label) = &self.asking {
            writeln!(f, "ASKING \"{label}\"")?;
        }
        writeln!(f, "WHERE")?;
        for (i, p) in self.where_patterns.iter().enumerate() {
            let sep = if i + 1 < self.where_patterns.len() {
                "."
            } else {
                ""
            };
            writeln!(f, "  {p}{sep}")?;
        }
        writeln!(f, "SATISFYING")?;
        let n = self.satisfying.patterns.len();
        for (i, p) in self.satisfying.patterns.iter().enumerate() {
            let sep = if i + 1 < n || self.satisfying.more {
                "."
            } else {
                ""
            };
            writeln!(f, "  {p}{sep}")?;
        }
        if self.satisfying.more {
            writeln!(f, "  MORE")?;
        }
        if !self.satisfying.implying.is_empty() {
            writeln!(f, "IMPLYING")?;
            let m = self.satisfying.implying.len();
            for (i, p) in self.satisfying.implying.iter().enumerate() {
                let sep = if i + 1 < m { "." } else { "" };
                writeln!(f, "  {p}{sep}")?;
            }
        }
        write!(f, "WITH SUPPORT = {}", self.satisfying.support_threshold)?;
        if let Some(c) = self.satisfying.confidence_threshold {
            write!(f, " AND CONFIDENCE = {c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplicity_bounds() {
        assert_eq!(Multiplicity::ExactlyOne.min(), 1);
        assert_eq!(Multiplicity::ExactlyOne.max(), Some(1));
        assert_eq!(Multiplicity::AtLeastOne.min(), 1);
        assert_eq!(Multiplicity::AtLeastOne.max(), None);
        assert_eq!(Multiplicity::Any.min(), 0);
        assert_eq!(Multiplicity::Any.max(), None);
        assert_eq!(Multiplicity::Optional.min(), 0);
        assert_eq!(Multiplicity::Optional.max(), Some(1));
    }

    #[test]
    fn term_display() {
        assert_eq!(Term::var("x").to_string(), "$x");
        assert_eq!(
            Term::Var {
                name: "y".into(),
                mult: Multiplicity::AtLeastOne
            }
            .to_string(),
            "$y+"
        );
        assert_eq!(Term::elem("NYC").to_string(), "NYC");
        assert_eq!(Term::elem("Tel Aviv").to_string(), "\"Tel Aviv\"");
        assert_eq!(Term::Blank.to_string(), "[]");
        assert_eq!(
            Term::Literal("child-friendly".into()).to_string(),
            "\"child-friendly\""
        );
    }

    #[test]
    fn pred_display() {
        assert_eq!(Pred::rel("doAt").to_string(), "doAt");
        assert_eq!(
            Pred::Rel {
                name: "subClassOf".into(),
                star: true
            }
            .to_string(),
            "subClassOf*"
        );
        assert_eq!(Pred::Var("p".into()).to_string(), "$p");
    }
}
