//! Lexer for OASSIS-QL.

use std::fmt;

/// A token with its source position (1-based line/column).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Token {
    pub kind: TokenKind,
    pub line: u32,
    pub col: u32,
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum TokenKind {
    // keywords
    Select,
    FactSets,
    Variables,
    All,
    Top,
    Diverse,
    Asking,
    Where,
    Satisfying,
    Implying,
    More,
    With,
    Support,
    And,
    Confidence,
    // punctuation
    Dot,
    Eq,
    Plus,
    Star,
    Question,
    Blank, // []
    // payloads
    Var(String),    // $name
    Ident(String),  // bare name
    Quoted(String), // "…"
    Number(f64),
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Select => write!(f, "SELECT"),
            TokenKind::FactSets => write!(f, "FACT-SETS"),
            TokenKind::Variables => write!(f, "VARIABLES"),
            TokenKind::All => write!(f, "ALL"),
            TokenKind::Top => write!(f, "TOP"),
            TokenKind::Diverse => write!(f, "DIVERSE"),
            TokenKind::Asking => write!(f, "ASKING"),
            TokenKind::Where => write!(f, "WHERE"),
            TokenKind::Satisfying => write!(f, "SATISFYING"),
            TokenKind::Implying => write!(f, "IMPLYING"),
            TokenKind::More => write!(f, "MORE"),
            TokenKind::With => write!(f, "WITH"),
            TokenKind::Support => write!(f, "SUPPORT"),
            TokenKind::And => write!(f, "AND"),
            TokenKind::Confidence => write!(f, "CONFIDENCE"),
            TokenKind::Dot => write!(f, "'.'"),
            TokenKind::Eq => write!(f, "'='"),
            TokenKind::Plus => write!(f, "'+'"),
            TokenKind::Star => write!(f, "'*'"),
            TokenKind::Question => write!(f, "'?'"),
            TokenKind::Blank => write!(f, "'[]'"),
            TokenKind::Var(n) => write!(f, "${n}"),
            TokenKind::Ident(n) => write!(f, "{n}"),
            TokenKind::Quoted(s) => write!(f, "\"{s}\""),
            TokenKind::Number(x) => write!(f, "{x}"),
            TokenKind::Eof => write!(f, "end of input"),
        }
    }
}

/// A lexical error (reported through [`QlError`](crate::QlError)).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LexError {
    pub message: String,
    pub line: u32,
    pub col: u32,
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    // '-' is allowed inside identifiers (FACT-SETS, child-friendly).
    c.is_alphanumeric() || c == '_' || c == '-'
}

pub(crate) fn lex(src: &str) -> Result<Vec<Token>, LexError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let (mut line, mut col) = (1u32, 1u32);

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if let Some(c) = c {
                if c == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
            }
            c
        }};
    }

    loop {
        // skip whitespace and `#` / `--` comments
        loop {
            match chars.peek() {
                Some(c) if c.is_whitespace() => {
                    bump!();
                }
                Some('#') => {
                    while let Some(&c) = chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        bump!();
                    }
                }
                _ => break,
            }
        }
        let (tline, tcol) = (line, col);
        let Some(&c) = chars.peek() else {
            out.push(Token {
                kind: TokenKind::Eof,
                line: tline,
                col: tcol,
            });
            return Ok(out);
        };
        let kind = match c {
            '.' => {
                bump!();
                TokenKind::Dot
            }
            '=' => {
                bump!();
                TokenKind::Eq
            }
            '+' => {
                bump!();
                TokenKind::Plus
            }
            '*' => {
                bump!();
                TokenKind::Star
            }
            '?' => {
                bump!();
                TokenKind::Question
            }
            '[' => {
                bump!();
                match chars.peek() {
                    Some(']') => {
                        bump!();
                        TokenKind::Blank
                    }
                    _ => {
                        return Err(LexError {
                            message: "expected ']' after '['".into(),
                            line: tline,
                            col: tcol,
                        })
                    }
                }
            }
            '$' => {
                bump!();
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if is_ident_continue(c) {
                        name.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                if name.is_empty() {
                    return Err(LexError {
                        message: "expected variable name after '$'".into(),
                        line: tline,
                        col: tcol,
                    });
                }
                TokenKind::Var(name)
            }
            '"' => {
                bump!();
                let mut s = String::new();
                loop {
                    match bump!() {
                        Some('"') => break,
                        Some('\\') => match bump!() {
                            Some(e @ ('"' | '\\')) => s.push(e),
                            Some(other) => {
                                return Err(LexError {
                                    message: format!("unknown escape '\\{other}'"),
                                    line: tline,
                                    col: tcol,
                                })
                            }
                            None => {
                                return Err(LexError {
                                    message: "unterminated string".into(),
                                    line: tline,
                                    col: tcol,
                                })
                            }
                        },
                        Some(c) => s.push(c),
                        None => {
                            return Err(LexError {
                                message: "unterminated string".into(),
                                line: tline,
                                col: tcol,
                            })
                        }
                    }
                }
                TokenKind::Quoted(s)
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() {
                        text.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                // fractional part: only if '.' is followed by a digit, so a
                // trailing statement dot is not swallowed.
                let mut rest = chars.clone();
                if rest.next() == Some('.') && rest.next().is_some_and(|d| d.is_ascii_digit()) {
                    text.push('.');
                    bump!();
                    while let Some(&c) = chars.peek() {
                        if c.is_ascii_digit() {
                            text.push(c);
                            bump!();
                        } else {
                            break;
                        }
                    }
                }
                let value: f64 = text.parse().map_err(|_| LexError {
                    message: format!("invalid number {text:?}"),
                    line: tline,
                    col: tcol,
                })?;
                TokenKind::Number(value)
            }
            c if is_ident_start(c) => {
                let mut name = String::new();
                while let Some(&c) = chars.peek() {
                    if is_ident_continue(c) {
                        name.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                match name.as_str() {
                    "SELECT" => TokenKind::Select,
                    "FACT-SETS" => TokenKind::FactSets,
                    "VARIABLES" => TokenKind::Variables,
                    "ALL" => TokenKind::All,
                    "TOP" => TokenKind::Top,
                    "DIVERSE" => TokenKind::Diverse,
                    "ASKING" => TokenKind::Asking,
                    "WHERE" => TokenKind::Where,
                    "SATISFYING" => TokenKind::Satisfying,
                    "IMPLYING" => TokenKind::Implying,
                    "MORE" => TokenKind::More,
                    "WITH" => TokenKind::With,
                    "SUPPORT" => TokenKind::Support,
                    "AND" => TokenKind::And,
                    "CONFIDENCE" => TokenKind::Confidence,
                    _ => TokenKind::Ident(name),
                }
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    line: tline,
                    col: tcol,
                })
            }
        };
        out.push(Token {
            kind,
            line: tline,
            col: tcol,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("SELECT FACT-SETS ALL"),
            vec![
                TokenKind::Select,
                TokenKind::FactSets,
                TokenKind::All,
                TokenKind::Eof
            ]
        );
        // lowercase is an identifier, not a keyword
        assert_eq!(kinds("select")[0], TokenKind::Ident("select".into()));
    }

    #[test]
    fn variables_and_mults() {
        assert_eq!(
            kinds("$y+ doAt $x"),
            vec![
                TokenKind::Var("y".into()),
                TokenKind::Plus,
                TokenKind::Ident("doAt".into()),
                TokenKind::Var("x".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn star_after_ident() {
        assert_eq!(
            kinds("subClassOf* Attraction"),
            vec![
                TokenKind::Ident("subClassOf".into()),
                TokenKind::Star,
                TokenKind::Ident("Attraction".into()),
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn number_vs_statement_dot() {
        assert_eq!(
            kinds("= 0.4"),
            vec![TokenKind::Eq, TokenKind::Number(0.4), TokenKind::Eof]
        );
        // a dot not followed by a digit stays a separator
        assert_eq!(
            kinds("NYC. 4."),
            vec![
                TokenKind::Ident("NYC".into()),
                TokenKind::Dot,
                TokenKind::Number(4.0),
                TokenKind::Dot,
                TokenKind::Eof
            ]
        );
    }

    #[test]
    fn strings_and_escapes() {
        assert_eq!(
            kinds("\"Tel Aviv\"")[0],
            TokenKind::Quoted("Tel Aviv".into())
        );
        assert_eq!(kinds(r#""a\"b""#)[0], TokenKind::Quoted("a\"b".into()));
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn blank_token() {
        assert_eq!(kinds("[] eatAt $z")[0], TokenKind::Blank);
        assert!(lex("[x]").is_err());
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("SELECT # a comment\nWHERE"),
            vec![TokenKind::Select, TokenKind::Where, TokenKind::Eof]
        );
    }

    #[test]
    fn positions() {
        let toks = lex("SELECT\n  $x").unwrap();
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn bad_char_reported() {
        let err = lex("SELECT @").unwrap_err();
        assert!(err.message.contains("unexpected character"));
        assert_eq!(err.col, 8);
    }

    #[test]
    fn dollar_without_name() {
        assert!(lex("$ x").is_err());
    }

    #[test]
    fn dashed_identifier() {
        assert_eq!(
            kinds("child-friendly")[0],
            TokenKind::Ident("child-friendly".into())
        );
    }
}
