//! # oassis-ql — the OASSIS-QL query language (Section 3)
//!
//! OASSIS-QL extends a SPARQL-like triple-pattern language with crowd-mining
//! constructs. A query has three parts (Figure 2 of the paper):
//!
//! ```text
//! SELECT FACT-SETS               -- or VARIABLES; optional ALL
//! WHERE
//!   $w subClassOf* Attraction.   -- SPARQL-like selection over the ontology
//!   $x instanceOf $w.
//!   $x hasLabel "child-friendly".
//!   ...
//! SATISFYING
//!   $y+ doAt $x.                 -- the data patterns mined from the crowd
//!   [] eatAt $z.                 -- `[]` is an existential wildcard
//!   MORE                         -- "plus other relevant advice"
//! WITH SUPPORT = 0.4
//! ```
//!
//! This crate provides:
//! * [`ast`] — the abstract syntax tree ([`Query`], [`TriplePattern`],
//!   [`Multiplicity`], …) and a canonical pretty-printer;
//! * [`parse`](parse()) — a hand-written lexer + recursive-descent parser
//!   with positioned errors;
//! * [`bind()`](bind()) — name resolution against an [`ontology::Ontology`], yielding
//!   a [`BoundQuery`] with interned ids and the satisfying-clause meta
//!   fact-set;
//! * [`eval`] — evaluation of the WHERE clause, producing the **base valid
//!   assignments** (multiplicity 1) that seed the assignment DAG of
//!   Section 4. Two match modes are supported: [`MatchMode::Exact`]
//!   replicates the paper's RDFLIB/SPARQL engine (triples match asserted
//!   facts), while [`MatchMode::Semantic`] matches modulo the fact order of
//!   Definition 2.5 (`φ(A_WHERE) ≤ O`).

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

pub mod ast;
pub mod bind;
pub mod eval;
mod lex;
mod parse;

pub use ast::{
    Multiplicity, OutputFormat, Pred, Query, SatisfyingClause, SelectClause, Term, TriplePattern,
};
pub use bind::{bind, BoundQuery, FactTerm, MetaFact, RelTerm, Value, VarId, VarInfo};
pub use eval::{evaluate_where, evaluate_where_pool, BaseAssignment, MatchMode};
pub use parse::{parse, QlError};
