//! Recursive-descent parser for OASSIS-QL.

use crate::ast::*;
use crate::lex::{lex, Token, TokenKind};
use std::fmt;

/// Error raised while parsing or binding an OASSIS-QL query.
#[derive(Debug, Clone, PartialEq)]
pub enum QlError {
    /// Lexical or syntactic error at a source position (1-based).
    Syntax {
        /// Human-readable description.
        message: String,
        /// Source line.
        line: u32,
        /// Source column.
        col: u32,
    },
    /// Name-resolution failure (unknown element/relation).
    UnknownName {
        /// The unresolved name.
        name: String,
        /// Whether an element or a relation was expected.
        kind: &'static str,
    },
    /// The query is structurally invalid (e.g. a multiplicity annotation in
    /// the WHERE clause, or a support threshold outside `[0, 1]`).
    Invalid(
        /// Description of the violation.
        String,
    ),
}

impl fmt::Display for QlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QlError::Syntax { message, line, col } => {
                write!(f, "syntax error at {line}:{col}: {message}")
            }
            QlError::UnknownName { name, kind } => write!(f, "unknown {kind} {name:?}"),
            QlError::Invalid(msg) => write!(f, "invalid query: {msg}"),
        }
    }
}

impl std::error::Error for QlError {}

/// Parses OASSIS-QL source into a [`Query`].
///
/// ```
/// let q = oassis_ql::parse(r#"
/// SELECT FACT-SETS
/// WHERE
///   $y subClassOf* Activity
/// SATISFYING
///   $y+ doAt Park
/// WITH SUPPORT = 0.4
/// "#).unwrap();
/// assert_eq!(q.satisfying.support_threshold, 0.4);
/// ```
pub fn parse(src: &str) -> Result<Query, QlError> {
    let tokens = lex(src).map_err(|e| QlError::Syntax {
        message: e.message,
        line: e.line,
        col: e.col,
    })?;
    Parser { tokens, pos: 0 }.query()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    fn bump(&mut self) -> TokenKind {
        let t = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, QlError> {
        let t = &self.tokens[self.pos];
        Err(QlError::Syntax {
            message: message.into(),
            line: t.line,
            col: t.col,
        })
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), QlError> {
        if *self.peek() == kind {
            self.bump();
            Ok(())
        } else {
            self.err(format!("expected {kind}, found {}", self.peek()))
        }
    }

    fn query(&mut self) -> Result<Query, QlError> {
        self.expect(TokenKind::Select)?;
        let format = match self.bump() {
            TokenKind::FactSets => OutputFormat::FactSets,
            TokenKind::Variables => OutputFormat::Variables,
            other => return self.err(format!("expected FACT-SETS or VARIABLES, found {other}")),
        };
        let all = if *self.peek() == TokenKind::All {
            self.bump();
            true
        } else {
            false
        };
        let (top, diverse) = if *self.peek() == TokenKind::Top {
            self.bump();
            let k = match self.bump() {
                TokenKind::Number(x) if x >= 1.0 && x.fract() == 0.0 => x as usize,
                other => {
                    return self.err(format!(
                        "expected a positive integer after TOP, found {other}"
                    ))
                }
            };
            let diverse = if *self.peek() == TokenKind::Diverse {
                self.bump();
                true
            } else {
                false
            };
            (Some(k), diverse)
        } else {
            (None, false)
        };
        let asking = if *self.peek() == TokenKind::Asking {
            self.bump();
            match self.bump() {
                TokenKind::Quoted(label) => Some(label),
                other => {
                    return self.err(format!(
                        "expected a quoted profile label after ASKING, found {other}"
                    ))
                }
            }
        } else {
            None
        };
        self.expect(TokenKind::Where)?;
        let (where_patterns, _) = self.pattern_list(&[TokenKind::Satisfying])?;
        self.expect(TokenKind::Satisfying)?;
        let (patterns, more) = self.pattern_list(&[TokenKind::With, TokenKind::Implying])?;
        if patterns.is_empty() && !more {
            return Err(QlError::Invalid("SATISFYING clause has no patterns".into()));
        }
        let implying = if *self.peek() == TokenKind::Implying {
            self.bump();
            let (imp, imp_more) = self.pattern_list(&[TokenKind::With])?;
            if imp_more {
                return Err(QlError::Invalid(
                    "MORE is not allowed in the IMPLYING clause".into(),
                ));
            }
            if imp.is_empty() {
                return Err(QlError::Invalid("IMPLYING clause has no patterns".into()));
            }
            imp
        } else {
            Vec::new()
        };
        self.expect(TokenKind::With)?;
        self.expect(TokenKind::Support)?;
        self.expect(TokenKind::Eq)?;
        let support_threshold = match self.bump() {
            TokenKind::Number(x) => x,
            other => return self.err(format!("expected a number, found {other}")),
        };
        if !(0.0..=1.0).contains(&support_threshold) {
            return Err(QlError::Invalid(format!(
                "support threshold {support_threshold} outside [0, 1]"
            )));
        }
        let confidence_threshold = if *self.peek() == TokenKind::And {
            self.bump();
            self.expect(TokenKind::Confidence)?;
            self.expect(TokenKind::Eq)?;
            let c = match self.bump() {
                TokenKind::Number(x) => x,
                other => return self.err(format!("expected a number, found {other}")),
            };
            if !(0.0..=1.0).contains(&c) {
                return Err(QlError::Invalid(format!(
                    "confidence threshold {c} outside [0, 1]"
                )));
            }
            Some(c)
        } else {
            None
        };
        if !implying.is_empty() && confidence_threshold.is_none() {
            return Err(QlError::Invalid(
                "IMPLYING requires an AND CONFIDENCE = … threshold".into(),
            ));
        }
        if implying.is_empty() && confidence_threshold.is_some() {
            return Err(QlError::Invalid(
                "AND CONFIDENCE requires an IMPLYING clause".into(),
            ));
        }
        if *self.peek() != TokenKind::Eof {
            return self.err(format!("unexpected trailing {}", self.peek()));
        }
        Ok(Query {
            select: SelectClause {
                format,
                all,
                top,
                diverse,
            },
            asking,
            where_patterns,
            satisfying: SatisfyingClause {
                patterns,
                more,
                implying,
                support_threshold,
                confidence_threshold,
            },
        })
    }

    /// Parses a dot-separated pattern list until one of `stops` (or EOF).
    /// Returns the patterns and whether a MORE item was seen.
    fn pattern_list(&mut self, stops: &[TokenKind]) -> Result<(Vec<TriplePattern>, bool), QlError> {
        let mut patterns = Vec::new();
        let mut more = false;
        loop {
            if stops.contains(self.peek()) || *self.peek() == TokenKind::Eof {
                break;
            }
            if *self.peek() == TokenKind::More {
                self.bump();
                more = true;
            } else {
                patterns.push(self.pattern()?);
            }
            if *self.peek() == TokenKind::Dot {
                self.bump();
            } else {
                break;
            }
        }
        Ok((patterns, more))
    }

    fn pattern(&mut self) -> Result<TriplePattern, QlError> {
        let subject = self.term()?;
        let predicate = self.pred()?;
        let object = self.term()?;
        Ok(TriplePattern {
            subject,
            predicate,
            object,
        })
    }

    fn term(&mut self) -> Result<Term, QlError> {
        match self.bump() {
            TokenKind::Var(name) => {
                let mult = match self.peek() {
                    TokenKind::Plus => {
                        self.bump();
                        Multiplicity::AtLeastOne
                    }
                    // `$y* doAt ...`: a star right after a variable is a
                    // multiplicity only if another term follows (it cannot
                    // be a path star, which attaches to relation names).
                    TokenKind::Star => {
                        self.bump();
                        Multiplicity::Any
                    }
                    TokenKind::Question => {
                        self.bump();
                        Multiplicity::Optional
                    }
                    _ => Multiplicity::ExactlyOne,
                };
                Ok(Term::Var { name, mult })
            }
            TokenKind::Ident(name) => Ok(Term::Elem(name)),
            TokenKind::Quoted(s) => Ok(Term::Literal(s)),
            TokenKind::Blank => Ok(Term::Blank),
            other => self.err(format!("expected a term, found {other}")),
        }
    }

    fn pred(&mut self) -> Result<Pred, QlError> {
        match self.bump() {
            TokenKind::Var(name) => Ok(Pred::Var(name)),
            TokenKind::Ident(name) | TokenKind::Quoted(name) => {
                // A star after a relation name is always a path quantifier
                // (multiplicities never attach to relations).
                let star = if *self.peek() == TokenKind::Star {
                    self.bump();
                    true
                } else {
                    false
                };
                Ok(Pred::Rel { name, star })
            }
            other => self.err(format!("expected a relation, found {other}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG2: &str = r#"
SELECT FACT-SETS
WHERE
  $w subClassOf* Attraction.
  $x instanceOf $w.
  $x inside NYC.
  $x hasLabel "child-friendly".
  $y subClassOf* Activity.
  $z instanceOf Restaurant.
  $z nearBy $x
SATISFYING
  $y+ doAt $x.
  [] eatAt $z.
  MORE
WITH SUPPORT = 0.4
"#;

    #[test]
    fn parses_figure_2() {
        let q = parse(FIG2).unwrap();
        assert_eq!(q.select.format, OutputFormat::FactSets);
        assert!(!q.select.all);
        assert_eq!(q.where_patterns.len(), 7);
        assert_eq!(q.satisfying.patterns.len(), 2);
        assert!(q.satisfying.more);
        assert_eq!(q.satisfying.support_threshold, 0.4);
        // the subClassOf* path
        assert_eq!(
            q.where_patterns[0].predicate,
            Pred::Rel {
                name: "subClassOf".into(),
                star: true
            }
        );
        // the multiplicity on $y
        assert_eq!(
            q.satisfying.patterns[0].subject,
            Term::Var {
                name: "y".into(),
                mult: Multiplicity::AtLeastOne
            }
        );
        // the blank
        assert_eq!(q.satisfying.patterns[1].subject, Term::Blank);
    }

    #[test]
    fn roundtrip_figure_2() {
        let q = parse(FIG2).unwrap();
        let printed = q.to_string();
        let q2 = parse(&printed).unwrap();
        assert_eq!(q, q2);
    }

    #[test]
    fn select_variables_all() {
        let q = parse(
            "SELECT VARIABLES ALL WHERE $x instanceOf Park SATISFYING $x doAt $x WITH SUPPORT = 0.1",
        )
        .unwrap();
        assert_eq!(q.select.format, OutputFormat::Variables);
        assert!(q.select.all);
    }

    #[test]
    fn empty_where_is_allowed() {
        // captures standard frequent itemset mining (Section 4.1):
        // empty WHERE + `$x+ [] []`-style satisfying clause. With our
        // grammar the wildcard relation is a relation variable.
        let q = parse("SELECT FACT-SETS WHERE SATISFYING $x+ $p $v WITH SUPPORT = 0.3").unwrap();
        assert!(q.where_patterns.is_empty());
        assert_eq!(q.satisfying.patterns.len(), 1);
    }

    #[test]
    fn star_multiplicity_on_variable() {
        let q = parse("SELECT FACT-SETS WHERE SATISFYING $u* rel $v WITH SUPPORT = 0.2").unwrap();
        assert_eq!(
            q.satisfying.patterns[0].subject,
            Term::Var {
                name: "u".into(),
                mult: Multiplicity::Any
            }
        );
    }

    #[test]
    fn optional_multiplicity() {
        let q = parse("SELECT FACT-SETS WHERE SATISFYING $u? rel $v WITH SUPPORT = 0.2").unwrap();
        assert_eq!(
            q.satisfying.patterns[0].subject,
            Term::Var {
                name: "u".into(),
                mult: Multiplicity::Optional
            }
        );
    }

    #[test]
    fn missing_satisfying_rejected() {
        let e = parse("SELECT FACT-SETS WHERE $x a b WITH SUPPORT = 0.4").unwrap_err();
        assert!(matches!(e, QlError::Syntax { .. }), "{e}");
    }

    #[test]
    fn empty_satisfying_rejected() {
        let e = parse("SELECT FACT-SETS WHERE SATISFYING WITH SUPPORT = 0.4").unwrap_err();
        assert!(matches!(e, QlError::Invalid(_)), "{e}");
    }

    #[test]
    fn out_of_range_support_rejected() {
        let e = parse("SELECT FACT-SETS WHERE SATISFYING $x r $y WITH SUPPORT = 1.5").unwrap_err();
        assert!(matches!(e, QlError::Invalid(_)));
    }

    #[test]
    fn trailing_garbage_rejected() {
        let e = parse("SELECT FACT-SETS WHERE SATISFYING $x r $y WITH SUPPORT = 0.5 garbage")
            .unwrap_err();
        assert!(matches!(e, QlError::Syntax { .. }));
    }

    #[test]
    fn error_positions_are_reported() {
        let e = parse("SELECT NONSENSE").unwrap_err();
        match e {
            QlError::Syntax { line, col, .. } => {
                assert_eq!(line, 1);
                assert!(col >= 8);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn quoted_element_names() {
        let q = parse(
            "SELECT FACT-SETS WHERE $x inside \"Tel Aviv\" SATISFYING $x r $x WITH SUPPORT = 0.2",
        )
        .unwrap();
        assert_eq!(q.where_patterns[0].object, Term::Literal("Tel Aviv".into()));
    }

    #[test]
    fn relation_variable() {
        let q = parse("SELECT FACT-SETS WHERE $a $p $b SATISFYING $a $p $b WITH SUPPORT = 0.2")
            .unwrap();
        assert_eq!(q.where_patterns[0].predicate, Pred::Var("p".into()));
    }

    #[test]
    fn integer_support_threshold() {
        let q = parse("SELECT FACT-SETS WHERE SATISFYING $x r $y WITH SUPPORT = 1").unwrap();
        assert_eq!(q.satisfying.support_threshold, 1.0);
    }
}
