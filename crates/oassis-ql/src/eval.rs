//! Evaluation of the WHERE clause over the ontology, producing the base
//! (multiplicity-1) valid assignments that seed the assignment DAG.
//!
//! Section 5 of the paper evaluates the WHERE clause with an off-the-shelf
//! SPARQL engine (RDFLIB): variables bind to the components of **asserted**
//! triples. That behaviour is [`MatchMode::Exact`]. The formal semantics of
//! Section 3, however, only requires `φ(A_WHERE) ≤ O` — the instantiated
//! fact-set must be *semantically implied* by the ontology (Definition
//! 2.5). [`MatchMode::Semantic`] implements that relaxation: a pattern fact
//! matches an asserted fact whose components are specializations of the
//! pattern's constants.

use crate::bind::{BoundQuery, FactTerm, RelTerm, Value, VarId, WherePattern};
use ontology::{ElemId, Ontology, RelId};
use std::collections::{HashMap, HashSet, VecDeque};

/// How constants in WHERE patterns match ontology facts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchMode {
    /// SPARQL-style: pattern constants must equal fact components
    /// (the paper's implementation, Section 6.1).
    #[default]
    Exact,
    /// Definition 2.5: a pattern constant `c` matches a fact component `c'`
    /// when `c ≤ c'`. Variables still bind to the asserted components.
    Semantic,
}

/// One valid assignment at multiplicity 1: a value for every variable that
/// the WHERE clause constrains (`None` for SATISFYING-only variables,
/// which range over the whole vocabulary — see `oassis-core`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BaseAssignment(pub Vec<Option<Value>>);

impl BaseAssignment {
    /// The value bound to `v`, if any.
    #[inline]
    pub fn get(&self, v: VarId) -> Option<Value> {
        self.0[v.index()]
    }
}

/// Evaluates the WHERE clause, returning the deduplicated valid base
/// assignments. With an empty WHERE clause the result is a single,
/// all-unbound assignment (the SATISFYING clause then ranges over the
/// whole vocabulary, which is how OASSIS-QL captures classic frequent
/// itemset mining — Section 4.1).
pub fn evaluate_where(q: &BoundQuery, ont: &Ontology, mode: MatchMode) -> Vec<BaseAssignment> {
    let mut ev = Evaluator {
        q,
        ont,
        mode,
        star_cache: HashMap::new(),
        results: HashSet::new(),
    };
    let mut bindings: Vec<Option<Value>> = vec![None; q.vars.len()];
    let mut remaining: Vec<usize> = (0..q.where_patterns.len()).collect();
    ev.solve(&mut bindings, &mut remaining);
    let mut out: Vec<BaseAssignment> = ev.results.into_iter().collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

/// [`evaluate_where`] fanned out across a [`minipool::Pool`].
///
/// The WHERE clause is exhaustive backtracking over an unordered pattern
/// set, and the public result is the *sorted, deduplicated* assignment
/// set — so parallelism cannot change it. We split on the seed pattern
/// (the one the sequential solver would match first): each of its matches
/// becomes an independent branch solved by a worker with its own
/// [`Evaluator`] (star caches are per-worker, rebuilt on demand), and the
/// branch results are unioned and sorted exactly like the sequential
/// path. Runs inline — byte-for-byte the sequential algorithm — when the
/// pool is sequential or there is at most one pattern.
pub fn evaluate_where_pool(
    q: &BoundQuery,
    ont: &Ontology,
    mode: MatchMode,
    pool: &minipool::Pool,
) -> Vec<BaseAssignment> {
    if pool.threads() <= 1 || q.where_patterns.len() < 2 {
        return evaluate_where(q, ont, mode);
    }
    let mut seed_ev = Evaluator {
        q,
        ont,
        mode,
        star_cache: HashMap::new(),
        results: HashSet::new(),
    };
    let empty: Vec<Option<Value>> = vec![None; q.vars.len()];
    // The same seed pattern the sequential solver picks first (fewest
    // unbound variables; ties to the lowest index).
    let pi0 = (0..q.where_patterns.len())
        .min_by_key(|&pi| seed_ev.unbound_count(&q.where_patterns[pi], &empty))
        .expect("at least two patterns");
    // Matching the seed pattern with an empty `remaining` set records
    // every post-match binding state into `results`: those states are the
    // branch seeds.
    let mut bindings = empty;
    let mut no_remaining: Vec<usize> = Vec::new();
    let pattern = q.where_patterns[pi0].clone();
    seed_ev.match_pattern(&pattern, &mut bindings, &mut no_remaining);
    let mut forks: Vec<BaseAssignment> = seed_ev.results.into_iter().collect();
    forks.sort_by(|a, b| a.0.cmp(&b.0));
    let rest: Vec<usize> = (0..q.where_patterns.len()).filter(|&i| i != pi0).collect();
    let branch_sets: Vec<Vec<BaseAssignment>> = pool.par_map(&forks, |fork| {
        let mut ev = Evaluator {
            q,
            ont,
            mode,
            star_cache: HashMap::new(),
            results: HashSet::new(),
        };
        let mut b = fork.0.clone();
        let mut rem = rest.clone();
        ev.solve(&mut b, &mut rem);
        ev.results.into_iter().collect()
    });
    let merged: HashSet<BaseAssignment> = branch_sets.into_iter().flatten().collect();
    let mut out: Vec<BaseAssignment> = merged.into_iter().collect();
    out.sort_by(|a, b| a.0.cmp(&b.0));
    out
}

struct Evaluator<'a> {
    q: &'a BoundQuery,
    ont: &'a Ontology,
    mode: MatchMode,
    /// Per-relation star-path adjacency: `(rel, reversed)` → successors.
    star_cache: HashMap<(RelId, bool), HashMap<ElemId, Vec<ElemId>>>,
    results: HashSet<BaseAssignment>,
}

impl Evaluator<'_> {
    fn solve(&mut self, bindings: &mut Vec<Option<Value>>, remaining: &mut Vec<usize>) {
        if remaining.is_empty() {
            self.results.insert(BaseAssignment(bindings.clone()));
            return;
        }
        // Pick the most-bound pattern next (fewest unbound variables).
        let (pos, _) = remaining
            .iter()
            .enumerate()
            .min_by_key(|(_, &pi)| self.unbound_count(&self.q.where_patterns[pi], bindings))
            .expect("remaining is non-empty");
        let pi = remaining.swap_remove(pos);
        let pattern = self.q.where_patterns[pi].clone();
        self.match_pattern(&pattern, bindings, remaining);
        remaining.push(pi);
    }

    fn unbound_count(&self, p: &WherePattern, bindings: &[Option<Value>]) -> usize {
        let term = |t: &FactTerm| match t {
            FactTerm::Var(v) if bindings[v.index()].is_none() => 1,
            _ => 0,
        };
        match p {
            WherePattern::Label { s, .. } => term(s),
            WherePattern::Triple { s, r, o, .. } => {
                term(s)
                    + term(o)
                    + match r {
                        RelTerm::Var(v) if bindings[v.index()].is_none() => 1,
                        _ => 0,
                    }
            }
        }
    }

    fn match_pattern(
        &mut self,
        p: &WherePattern,
        bindings: &mut Vec<Option<Value>>,
        remaining: &mut Vec<usize>,
    ) {
        match p {
            WherePattern::Label { s, label } => self.match_label(*s, label, bindings, remaining),
            WherePattern::Triple {
                s,
                r,
                o,
                star: false,
            } => self.match_triple(*s, *r, *o, bindings, remaining),
            WherePattern::Triple {
                s,
                r,
                o,
                star: true,
            } => {
                let RelTerm::Const(rel) = *r else {
                    unreachable!("binder rejects star with relation variable")
                };
                self.match_star(*s, rel, *o, bindings, remaining);
            }
        }
    }

    fn match_label(
        &mut self,
        s: FactTerm,
        label: &str,
        bindings: &mut Vec<Option<Value>>,
        remaining: &mut Vec<usize>,
    ) {
        match s {
            FactTerm::Const(e) => {
                if self.ont.has_label(e, label) {
                    self.solve(bindings, remaining);
                }
            }
            FactTerm::Blank => {
                if !self.ont.elems_with_label(label).is_empty() {
                    self.solve(bindings, remaining);
                }
            }
            FactTerm::Var(v) => match bindings[v.index()] {
                Some(Value::Elem(e)) => {
                    if self.ont.has_label(e, label) {
                        self.solve(bindings, remaining);
                    }
                }
                Some(Value::Rel(_)) => {}
                None => {
                    for e in self.ont.elems_with_label(label) {
                        bindings[v.index()] = Some(Value::Elem(e));
                        self.solve(bindings, remaining);
                    }
                    bindings[v.index()] = None;
                }
            },
        }
    }

    /// Whether a pattern element-position `t` accepts fact component `c`
    /// under the current bindings; returns the variable to bind if unbound.
    fn accept_elem(
        &self,
        t: FactTerm,
        c: ElemId,
        bindings: &[Option<Value>],
    ) -> Option<Option<VarId>> {
        match t {
            FactTerm::Blank => Some(None),
            FactTerm::Const(e) => {
                let ok = match self.mode {
                    MatchMode::Exact => e == c,
                    MatchMode::Semantic => self.ont.vocab().elem_leq(e, c),
                };
                ok.then_some(None)
            }
            FactTerm::Var(v) => match bindings[v.index()] {
                None => Some(Some(v)),
                Some(Value::Elem(e)) if e == c => Some(None),
                _ => None,
            },
        }
    }

    fn match_triple(
        &mut self,
        s: FactTerm,
        r: RelTerm,
        o: FactTerm,
        bindings: &mut Vec<Option<Value>>,
        remaining: &mut Vec<usize>,
    ) {
        // Candidate relations.
        let rels: Vec<RelId> = match r {
            RelTerm::Const(rel) => match self.mode {
                MatchMode::Exact => vec![rel],
                MatchMode::Semantic => self.ont.vocab().rel_descendants(rel).collect(),
            },
            RelTerm::Var(v) => match bindings[v.index()] {
                Some(Value::Rel(rel)) => vec![rel],
                Some(Value::Elem(_)) => vec![],
                None => self.ont.vocab().rels().collect(),
            },
        };
        for rel in rels {
            let rel_binds = match r {
                RelTerm::Var(v) if bindings[v.index()].is_none() => Some(v),
                _ => None,
            };
            // Iterate asserted facts with this relation.
            let facts: Vec<ontology::Fact> = self.ont.facts_with_rel(rel).to_vec();
            for f in facts {
                let Some(sb) = self.accept_elem(s, f.subject, bindings) else {
                    continue;
                };
                let Some(ob_pre) = self.accept_elem(o, f.object, bindings) else {
                    continue;
                };
                // Bind subject first; re-check object if s and o are the
                // same unbound variable.
                if let Some(v) = sb {
                    bindings[v.index()] = Some(Value::Elem(f.subject));
                }
                let ob = if sb.is_some() {
                    self.accept_elem(o, f.object, bindings)
                } else {
                    Some(ob_pre)
                };
                if let Some(ob) = ob {
                    if let Some(v) = ob {
                        bindings[v.index()] = Some(Value::Elem(f.object));
                    }
                    if let Some(v) = rel_binds {
                        bindings[v.index()] = Some(Value::Rel(rel));
                    }
                    self.solve(bindings, remaining);
                    if let Some(v) = rel_binds {
                        bindings[v.index()] = None;
                    }
                    if let Some(v) = ob {
                        bindings[v.index()] = None;
                    }
                }
                if let Some(v) = sb {
                    bindings[v.index()] = None;
                }
            }
        }
    }

    /// Star-path adjacency for `rel`: forward (`s → o` of asserted facts)
    /// or reversed.
    fn star_adj(&mut self, rel: RelId, reversed: bool) -> &HashMap<ElemId, Vec<ElemId>> {
        self.star_cache.entry((rel, reversed)).or_insert_with(|| {
            let mut adj: HashMap<ElemId, Vec<ElemId>> = HashMap::new();
            for f in self.ont.facts_with_rel(rel) {
                let (from, to) = if reversed {
                    (f.object, f.subject)
                } else {
                    (f.subject, f.object)
                };
                adj.entry(from).or_default().push(to);
            }
            adj
        })
    }

    /// All elements reachable from `start` by 0+ `rel` facts (forward or
    /// reversed), including `start` itself.
    fn star_reach(&mut self, rel: RelId, start: ElemId, reversed: bool) -> Vec<ElemId> {
        let adj = self.star_adj(rel, reversed);
        let mut seen: HashSet<ElemId> = HashSet::from([start]);
        let mut queue: VecDeque<ElemId> = VecDeque::from([start]);
        let mut out = vec![start];
        while let Some(e) = queue.pop_front() {
            if let Some(next) = adj.get(&e) {
                for &n in next {
                    if seen.insert(n) {
                        out.push(n);
                        queue.push_back(n);
                    }
                }
            }
        }
        out
    }

    fn match_star(
        &mut self,
        s: FactTerm,
        rel: RelId,
        o: FactTerm,
        bindings: &mut Vec<Option<Value>>,
        remaining: &mut Vec<usize>,
    ) {
        let elem_of = |t: FactTerm, bindings: &[Option<Value>]| -> Option<Option<ElemId>> {
            // Some(Some(e)) = bound to e; Some(None) = unbound var or blank
            match t {
                FactTerm::Const(e) => Some(Some(e)),
                FactTerm::Blank => Some(None),
                FactTerm::Var(v) => match bindings[v.index()] {
                    Some(Value::Elem(e)) => Some(Some(e)),
                    Some(Value::Rel(_)) => None,
                    None => Some(None),
                },
            }
        };
        let Some(sv) = elem_of(s, bindings) else {
            return;
        };
        let Some(ov) = elem_of(o, bindings) else {
            return;
        };
        match (sv, ov) {
            (Some(se), Some(oe)) => {
                if self.star_reach(rel, se, false).contains(&oe) {
                    self.solve(bindings, remaining);
                }
            }
            (Some(se), None) => {
                // enumerate objects reachable forward from se
                for oe in self.star_reach(rel, se, false) {
                    self.bind_star_end(o, oe, bindings, remaining);
                }
            }
            (None, Some(oe)) => {
                // enumerate subjects that reach oe (reverse reachability)
                for se in self.star_reach(rel, oe, true) {
                    self.bind_star_end(s, se, bindings, remaining);
                }
            }
            (None, None) => {
                // both open: every element paired with everything it reaches
                let elems: Vec<ElemId> = self.ont.vocab().elems().collect();
                for se in elems {
                    for oe in self.star_reach(rel, se, false) {
                        // bind s then o (they may be the same variable)
                        match s {
                            FactTerm::Var(v) => {
                                bindings[v.index()] = Some(Value::Elem(se));
                                self.bind_star_end(o, oe, bindings, remaining);
                                bindings[v.index()] = None;
                            }
                            _ => self.bind_star_end(o, oe, bindings, remaining),
                        }
                    }
                }
            }
        }
    }

    fn bind_star_end(
        &mut self,
        t: FactTerm,
        e: ElemId,
        bindings: &mut Vec<Option<Value>>,
        remaining: &mut Vec<usize>,
    ) {
        match t {
            FactTerm::Var(v) => match bindings[v.index()] {
                None => {
                    bindings[v.index()] = Some(Value::Elem(e));
                    self.solve(bindings, remaining);
                    bindings[v.index()] = None;
                }
                Some(Value::Elem(b)) if b == e => self.solve(bindings, remaining),
                _ => {}
            },
            FactTerm::Blank => self.solve(bindings, remaining),
            FactTerm::Const(c) => {
                if c == e {
                    self.solve(bindings, remaining);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bind::bind;
    use crate::parse;
    use ontology::domains::figure1;

    fn eval(src: &str, mode: MatchMode) -> (BoundQuery, Vec<BaseAssignment>, Ontology) {
        let ont = figure1::ontology();
        let q = parse(src).unwrap();
        let b = bind(&q, &ont).unwrap();
        let res = evaluate_where(&b, &ont, mode);
        (b, res, ont)
    }

    fn values(b: &BoundQuery, res: &[BaseAssignment], ont: &Ontology, var: &str) -> Vec<String> {
        let v = b.var_by_name(var).unwrap();
        let mut names: Vec<String> = res
            .iter()
            .filter_map(|a| a.get(v))
            .filter_map(Value::as_elem)
            .map(|e| ont.vocab().elem_name(e).to_owned())
            .collect();
        names.sort();
        names.dedup();
        names
    }

    #[test]
    fn figure_2_where_evaluation() {
        let (b, res, ont) = eval(figure1::SAMPLE_QUERY, MatchMode::Exact);
        assert!(!res.is_empty());
        // x: child-friendly attractions inside NYC with a nearby restaurant
        assert_eq!(
            values(&b, &res, &ont, "x"),
            vec!["Bronx Zoo", "Central Park"]
        );
        // z is tied to x by nearBy
        let x = b.var_by_name("x").unwrap();
        let z = b.var_by_name("z").unwrap();
        for a in &res {
            let xe = ont.vocab().elem_name(a.get(x).unwrap().as_elem().unwrap());
            let ze = ont.vocab().elem_name(a.get(z).unwrap().as_elem().unwrap());
            match xe {
                "Central Park" => assert_eq!(ze, "Maoz Veg"),
                "Bronx Zoo" => assert_eq!(ze, "Pine"),
                other => panic!("unexpected x = {other}"),
            }
        }
        // y ranges over every subclass-of* Activity
        let ys = values(&b, &res, &ont, "y");
        assert!(ys.contains(&"Activity".to_owned())); // 0-length path
        assert!(ys.contains(&"Biking".to_owned()));
        assert!(ys.contains(&"Baseball".to_owned()));
        assert!(ys.contains(&"Feed a Monkey".to_owned()));
        assert!(!ys.contains(&"Thing".to_owned())); // above Activity
        assert_eq!(ys.len(), 13);
    }

    #[test]
    fn star_path_includes_zero_length() {
        let (b, res, ont) = eval(
            "SELECT FACT-SETS WHERE $w subClassOf* Attraction SATISFYING $w doAt NYC WITH SUPPORT = 0.2",
            MatchMode::Exact,
        );
        let ws = values(&b, &res, &ont, "w");
        assert!(ws.contains(&"Attraction".to_owned()));
        assert!(ws.contains(&"Park".to_owned()));
        assert!(ws.contains(&"Zoo".to_owned()));
        // instances are instanceOf, not subClassOf
        assert!(!ws.contains(&"Central Park".to_owned()));
    }

    #[test]
    fn exact_vs_semantic_relation_matching() {
        // `$a nearBy NYC`: nothing asserted, but `Central Park inside NYC`
        // (and others) imply it semantically because nearBy ≤R inside.
        let src = "SELECT FACT-SETS WHERE $a nearBy NYC SATISFYING $a doAt NYC WITH SUPPORT = 0.2";
        let (_, res_exact, _) = eval(src, MatchMode::Exact);
        assert!(res_exact.is_empty());
        let (b, res_sem, ont) = eval(src, MatchMode::Semantic);
        let names = values(&b, &res_sem, &ont, "a");
        assert_eq!(names, vec!["Bronx Zoo", "Central Park", "Madison Square"]);
    }

    #[test]
    fn semantic_constant_generalization() {
        // `Maoz Veg nearBy $p` asserted for Central Park; with semantic
        // matching, the more general constant Outdoor also matches as
        // subject? No — constants generalize the *pattern*, so the pattern
        // constant must be ≤ the asserted component.
        let src =
            "SELECT FACT-SETS WHERE Restaurant nearBy $p SATISFYING $p doAt NYC WITH SUPPORT = 0.2";
        let (_, res_exact, _) = eval(src, MatchMode::Exact);
        assert!(res_exact.is_empty()); // `Restaurant nearBy …` is not asserted
        let (b, res_sem, ont) = eval(src, MatchMode::Semantic);
        // Restaurant ≤E Maoz Veg / Pine, so the pattern matches their facts.
        let names = values(&b, &res_sem, &ont, "p");
        assert_eq!(names, vec!["Bronx Zoo", "Central Park", "Madison Square"]);
    }

    #[test]
    fn empty_where_yields_single_unbound_assignment() {
        let (b, res, _) = eval(
            "SELECT FACT-SETS WHERE SATISFYING $x+ $p $v WITH SUPPORT = 0.2",
            MatchMode::Exact,
        );
        assert_eq!(res.len(), 1);
        assert!(res[0].0.iter().all(Option::is_none));
        assert_eq!(b.sat_vars.len(), 3);
    }

    #[test]
    fn blank_in_where_is_existential() {
        let (b, res, ont) = eval(
            "SELECT FACT-SETS WHERE $x nearBy [] SATISFYING $x doAt NYC WITH SUPPORT = 0.2",
            MatchMode::Exact,
        );
        let names = values(&b, &res, &ont, "x");
        assert_eq!(names, vec!["Maoz Veg", "Pine"]);
        // blanks do not multiply results: Maoz Veg is nearBy two places but
        // appears once
        assert_eq!(res.len(), 2);
    }

    #[test]
    fn relation_variable_enumerates() {
        let (b, res, ont) = eval(
            "SELECT FACT-SETS WHERE \"Maoz Veg\" $p \"Central Park\" SATISFYING Biking doAt NYC WITH SUPPORT = 0.2",
            MatchMode::Exact,
        );
        let p = b.var_by_name("p").unwrap();
        let rels: Vec<&str> = res
            .iter()
            .filter_map(|a| a.get(p))
            .filter_map(Value::as_rel)
            .map(|r| ont.vocab().rel_name(r))
            .collect();
        assert_eq!(rels, vec!["nearBy"]);
    }

    #[test]
    fn same_variable_twice_in_one_pattern() {
        // `$x nearBy $x` should only match reflexive facts (none here).
        let (_, res, _) = eval(
            "SELECT FACT-SETS WHERE $x nearBy $x SATISFYING $x doAt NYC WITH SUPPORT = 0.2",
            MatchMode::Exact,
        );
        assert!(res.is_empty());
    }

    #[test]
    fn bound_star_endpoints_check() {
        let (_, res, _) = eval(
            "SELECT FACT-SETS WHERE Basketball subClassOf* Activity SATISFYING Basketball doAt NYC WITH SUPPORT = 0.2",
            MatchMode::Exact,
        );
        assert_eq!(res.len(), 1); // vacuous single assignment (no vars in WHERE)
        let (_, res2, _) = eval(
            "SELECT FACT-SETS WHERE Basketball subClassOf* Food SATISFYING Basketball doAt NYC WITH SUPPORT = 0.2",
            MatchMode::Exact,
        );
        assert!(res2.is_empty());
    }

    #[test]
    fn results_are_deterministic_and_sorted() {
        let (_, res1, _) = eval(figure1::SAMPLE_QUERY, MatchMode::Exact);
        let (_, res2, _) = eval(figure1::SAMPLE_QUERY, MatchMode::Exact);
        assert_eq!(res1, res2);
    }

    #[test]
    fn pool_evaluation_matches_sequential_at_every_width() {
        let ont = figure1::ontology();
        let q = parse(figure1::SAMPLE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        for mode in [MatchMode::Exact, MatchMode::Semantic] {
            let seq = evaluate_where(&b, &ont, mode);
            for threads in [1usize, 2, 4, 8] {
                let pool = minipool::Pool::new(threads);
                assert_eq!(
                    evaluate_where_pool(&b, &ont, mode, &pool),
                    seq,
                    "threads={threads}"
                );
            }
        }
    }

    #[test]
    fn label_filter_on_constant() {
        let (_, res, _) = eval(
            "SELECT FACT-SETS WHERE \"Central Park\" hasLabel \"child-friendly\" SATISFYING Biking doAt \"Central Park\" WITH SUPPORT = 0.2",
            MatchMode::Exact,
        );
        assert_eq!(res.len(), 1);
        let (_, res2, _) = eval(
            "SELECT FACT-SETS WHERE \"Madison Square\" hasLabel \"child-friendly\" SATISFYING Biking doAt \"Central Park\" WITH SUPPORT = 0.2",
            MatchMode::Exact,
        );
        assert!(res2.is_empty());
    }
}
