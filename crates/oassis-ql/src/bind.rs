//! Name resolution: turning a parsed [`Query`] into a [`BoundQuery`] with
//! interned ids, a variable table, and the satisfying-clause meta–fact-set.

use crate::ast::{Multiplicity, OutputFormat, Pred, Query, Term, TriplePattern};
use crate::parse::QlError;
use ontology::{ElemId, Ontology, RelId};

/// Dense index of a query variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u16);

impl VarId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A value an assignment can map a variable to: per Definition 4.1,
/// assignments map the variable space to sets of vocabulary **elements or
/// relations**.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Value {
    /// An element value.
    Elem(ElemId),
    /// A relation value (for variables in predicate position).
    Rel(RelId),
}

impl Value {
    /// The element id, if this is an element value.
    pub fn as_elem(self) -> Option<ElemId> {
        match self {
            Value::Elem(e) => Some(e),
            Value::Rel(_) => None,
        }
    }

    /// The relation id, if this is a relation value.
    pub fn as_rel(self) -> Option<RelId> {
        match self {
            Value::Rel(r) => Some(r),
            Value::Elem(_) => None,
        }
    }
}

/// Metadata about one query variable.
#[derive(Debug, Clone, PartialEq)]
pub struct VarInfo {
    /// Source name (without the `$` sigil).
    pub name: String,
    /// Effective multiplicity (from SATISFYING-clause annotations).
    pub mult: Multiplicity,
    /// Occurs in the WHERE clause.
    pub in_where: bool,
    /// Occurs in the SATISFYING clause.
    pub in_satisfying: bool,
    /// Binds to relations (predicate position) rather than elements.
    pub is_rel: bool,
}

/// Subject/object position of a meta-fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FactTerm {
    /// A query variable.
    Var(VarId),
    /// A constant element.
    Const(ElemId),
    /// `[]` — existential wildcard.
    Blank,
}

/// Predicate position of a meta-fact.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelTerm {
    /// A relation variable.
    Var(VarId),
    /// A constant relation.
    Const(RelId),
}

/// One meta-fact of the SATISFYING clause ("meta–fact-set" in Section 3):
/// a triple whose positions may hold variables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MetaFact {
    /// Subject position.
    pub subject: FactTerm,
    /// Relation position.
    pub rel: RelTerm,
    /// Object position.
    pub object: FactTerm,
}

/// A bound WHERE-clause pattern, ready for evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum WherePattern {
    /// An ordinary or path (`star`) triple pattern.
    Triple {
        /// Subject position.
        s: FactTerm,
        /// Relation position.
        r: RelTerm,
        /// Object position.
        o: FactTerm,
        /// Whether the `*` path quantifier is attached (requires a constant
        /// relation).
        star: bool,
    },
    /// A `$x hasLabel "…"` filter.
    Label {
        /// Subject position.
        s: FactTerm,
        /// Required label.
        label: String,
    },
}

/// A query bound against an ontology.
#[derive(Debug, Clone)]
pub struct BoundQuery {
    /// Variable table, indexed by [`VarId`].
    pub vars: Vec<VarInfo>,
    /// Bound WHERE patterns.
    pub where_patterns: Vec<WherePattern>,
    /// The SATISFYING meta–fact-set `A_SAT` (the rule body, when an
    /// `IMPLYING` clause is present).
    pub sat_meta: Vec<MetaFact>,
    /// The `IMPLYING` meta–fact-set `A_IMP` (the rule head; empty for
    /// plain pattern queries).
    pub imp_meta: Vec<MetaFact>,
    /// Whether the query requested `MORE` facts.
    pub more: bool,
    /// The support threshold Θ.
    pub threshold: f64,
    /// The confidence threshold (rule queries only).
    pub confidence: Option<f64>,
    /// Whether `ALL` significant patterns (not only MSPs) were requested.
    pub all: bool,
    /// `TOP k`: stop after `k` valid MSPs.
    pub top_k: Option<usize>,
    /// `ASKING "label"`: restrict the crowd to members with this profile
    /// label.
    pub asking: Option<String>,
    /// Whether `TOP k` answers should be diversified.
    pub diverse: bool,
    /// Requested output format.
    pub format: OutputFormat,
    /// Variables that occur in the SATISFYING clause, in `VarId` order.
    /// The assignment DAG of Section 4 is built over these: assignments
    /// that differ only on WHERE-only variables define the same mined
    /// fact-set.
    pub sat_vars: Vec<VarId>,
}

impl BoundQuery {
    /// Looks up a variable by source name.
    pub fn var_by_name(&self, name: &str) -> Option<VarId> {
        self.vars
            .iter()
            .position(|v| v.name == name)
            .map(|i| VarId(i as u16))
    }
}

/// The relation name that is special-cased as a label filter.
pub const HAS_LABEL: &str = "hasLabel";

/// Binds a parsed query against an ontology.
///
/// Validations performed (violations yield [`QlError::Invalid`] /
/// [`QlError::UnknownName`]):
/// * all constant element/relation names resolve;
/// * multiplicity annotations appear only on SATISFYING-clause variables;
/// * a variable is used consistently in element or predicate position;
/// * conflicting multiplicity annotations on the same variable are rejected;
/// * `hasLabel` appears only in the WHERE clause with a string object;
/// * `*` paths have a constant relation.
pub fn bind(q: &Query, ont: &Ontology) -> Result<BoundQuery, QlError> {
    let mut b = Binder {
        ont,
        vars: Vec::new(),
        annotated: Vec::new(),
    };

    let mut where_patterns = Vec::with_capacity(q.where_patterns.len());
    for p in &q.where_patterns {
        where_patterns.push(b.bind_where(p)?);
    }
    let mut sat_meta = Vec::with_capacity(q.satisfying.patterns.len());
    for p in &q.satisfying.patterns {
        sat_meta.push(b.bind_sat(p)?);
    }
    let mut imp_meta = Vec::with_capacity(q.satisfying.implying.len());
    for p in &q.satisfying.implying {
        imp_meta.push(b.bind_sat(p)?);
    }

    let sat_vars: Vec<VarId> = (0..b.vars.len() as u16)
        .map(VarId)
        .filter(|v| b.vars[v.index()].in_satisfying)
        .collect();

    Ok(BoundQuery {
        vars: b.vars,
        where_patterns,
        sat_meta,
        imp_meta,
        more: q.satisfying.more,
        threshold: q.satisfying.support_threshold,
        confidence: q.satisfying.confidence_threshold,
        all: q.select.all,
        top_k: q.select.top,
        asking: q.asking.clone(),
        diverse: q.select.diverse,
        format: q.select.format,
        sat_vars,
    })
}

struct Binder<'a> {
    ont: &'a Ontology,
    vars: Vec<VarInfo>,
    /// Whether the variable carried an explicit multiplicity annotation.
    annotated: Vec<bool>,
}

impl Binder<'_> {
    fn var(
        &mut self,
        name: &str,
        mult: Multiplicity,
        in_where: bool,
        is_rel: bool,
    ) -> Result<VarId, QlError> {
        let id = match self.vars.iter().position(|v| v.name == name) {
            Some(i) => VarId(i as u16),
            None => {
                self.vars.push(VarInfo {
                    name: name.to_owned(),
                    mult: Multiplicity::ExactlyOne,
                    in_where: false,
                    in_satisfying: false,
                    is_rel,
                });
                self.annotated.push(false);
                VarId((self.vars.len() - 1) as u16)
            }
        };
        let info = &mut self.vars[id.index()];
        if info.is_rel != is_rel && (info.in_where || info.in_satisfying) {
            return Err(QlError::Invalid(format!(
                "variable ${name} used both as element and as relation"
            )));
        }
        if in_where {
            info.in_where = true;
        } else {
            info.in_satisfying = true;
        }
        if mult != Multiplicity::ExactlyOne {
            if in_where {
                return Err(QlError::Invalid(format!(
                    "multiplicity annotation on ${name} is only allowed in the SATISFYING clause"
                )));
            }
            if self.annotated[id.index()] && info.mult != mult {
                return Err(QlError::Invalid(format!(
                    "conflicting multiplicity annotations on ${name}"
                )));
            }
            info.mult = mult;
            self.annotated[id.index()] = true;
        }
        Ok(id)
    }

    fn elem(&self, name: &str) -> Result<ElemId, QlError> {
        self.ont.vocab().elem_id(name).ok_or(QlError::UnknownName {
            name: name.to_owned(),
            kind: "element",
        })
    }

    fn rel(&self, name: &str) -> Result<RelId, QlError> {
        self.ont.vocab().rel_id(name).ok_or(QlError::UnknownName {
            name: name.to_owned(),
            kind: "relation",
        })
    }

    fn fact_term(&mut self, t: &Term, in_where: bool) -> Result<FactTerm, QlError> {
        Ok(match t {
            Term::Var { name, mult } => FactTerm::Var(self.var(name, *mult, in_where, false)?),
            Term::Elem(name) => FactTerm::Const(self.elem(name)?),
            // A quoted string outside `hasLabel` names an element.
            Term::Literal(name) => FactTerm::Const(self.elem(name)?),
            Term::Blank => FactTerm::Blank,
        })
    }

    fn bind_where(&mut self, p: &TriplePattern) -> Result<WherePattern, QlError> {
        if let Pred::Rel { name, star } = &p.predicate {
            if name == HAS_LABEL {
                if *star {
                    return Err(QlError::Invalid("hasLabel* is not supported".into()));
                }
                let s = self.fact_term(&p.subject, true)?;
                let label = match &p.object {
                    Term::Literal(l) => l.clone(),
                    other => {
                        return Err(QlError::Invalid(format!(
                            "hasLabel requires a quoted string object, found {other}"
                        )))
                    }
                };
                return Ok(WherePattern::Label { s, label });
            }
        }
        let s = self.fact_term(&p.subject, true)?;
        let o = self.fact_term(&p.object, true)?;
        let (r, star) = match &p.predicate {
            Pred::Rel { name, star } => (RelTerm::Const(self.rel(name)?), *star),
            Pred::Var(name) => (
                RelTerm::Var(self.var(name, Multiplicity::ExactlyOne, true, true)?),
                false,
            ),
        };
        if star && matches!(r, RelTerm::Var(_)) {
            return Err(QlError::Invalid(
                "path '*' requires a constant relation".into(),
            ));
        }
        Ok(WherePattern::Triple { s, r, o, star })
    }

    fn bind_sat(&mut self, p: &TriplePattern) -> Result<MetaFact, QlError> {
        if let Pred::Rel { name, star } = &p.predicate {
            if name == HAS_LABEL {
                return Err(QlError::Invalid(
                    "hasLabel is only allowed in the WHERE clause".into(),
                ));
            }
            if *star {
                return Err(QlError::Invalid(
                    "path '*' is only allowed in the WHERE clause".into(),
                ));
            }
        }
        let subject = self.fact_term(&p.subject, false)?;
        let object = self.fact_term(&p.object, false)?;
        let rel = match &p.predicate {
            Pred::Rel { name, .. } => RelTerm::Const(self.rel(name)?),
            Pred::Var(name) => {
                RelTerm::Var(self.var(name, Multiplicity::ExactlyOne, false, true)?)
            }
        };
        Ok(MetaFact {
            subject,
            rel,
            object,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse;
    use ontology::domains::figure1;

    #[test]
    fn binds_figure_2() {
        let ont = figure1::ontology();
        let q = parse(figure1::SAMPLE_QUERY).unwrap();
        let b = bind(&q, &ont).unwrap();
        assert_eq!(b.vars.len(), 4); // w, x, y, z
        let y = b.var_by_name("y").unwrap();
        assert_eq!(b.vars[y.index()].mult, Multiplicity::AtLeastOne);
        assert!(b.vars[y.index()].in_where && b.vars[y.index()].in_satisfying);
        let w = b.var_by_name("w").unwrap();
        assert!(b.vars[w.index()].in_where && !b.vars[w.index()].in_satisfying);
        // sat_vars: x, y, z but not w
        assert_eq!(b.sat_vars.len(), 3);
        assert!(!b.sat_vars.contains(&w));
        assert!(b.more);
        assert_eq!(b.threshold, 0.4);
        // blank subject in `[] eatAt $z`
        assert!(matches!(b.sat_meta[1].subject, FactTerm::Blank));
    }

    #[test]
    fn unknown_element_rejected() {
        let ont = figure1::ontology();
        let q = parse(
            "SELECT FACT-SETS WHERE $x instanceOf Nonexistent SATISFYING $x doAt $x WITH SUPPORT = 0.2",
        )
        .unwrap();
        match bind(&q, &ont).unwrap_err() {
            QlError::UnknownName { name, kind } => {
                assert_eq!(name, "Nonexistent");
                assert_eq!(kind, "element");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unknown_relation_rejected() {
        let ont = figure1::ontology();
        let q = parse(
            "SELECT FACT-SETS WHERE $x frobnicates NYC SATISFYING $x doAt NYC WITH SUPPORT = 0.2",
        )
        .unwrap();
        assert!(matches!(
            bind(&q, &ont),
            Err(QlError::UnknownName {
                kind: "relation",
                ..
            })
        ));
    }

    #[test]
    fn multiplicity_in_where_rejected() {
        let ont = figure1::ontology();
        let q = parse(
            "SELECT FACT-SETS WHERE $x+ instanceOf Park SATISFYING $x doAt NYC WITH SUPPORT = 0.2",
        )
        .unwrap();
        assert!(matches!(bind(&q, &ont), Err(QlError::Invalid(_))));
    }

    #[test]
    fn conflicting_multiplicities_rejected() {
        let ont = figure1::ontology();
        let q = parse(
            "SELECT FACT-SETS WHERE SATISFYING $x+ doAt NYC. $x* eatAt NYC WITH SUPPORT = 0.2",
        )
        .unwrap();
        assert!(matches!(bind(&q, &ont), Err(QlError::Invalid(_))));
    }

    #[test]
    fn var_as_both_elem_and_rel_rejected() {
        let ont = figure1::ontology();
        let q = parse(
            "SELECT FACT-SETS WHERE $p instanceOf Park SATISFYING NYC $p NYC WITH SUPPORT = 0.2",
        )
        .unwrap();
        assert!(matches!(bind(&q, &ont), Err(QlError::Invalid(_))));
    }

    #[test]
    fn haslabel_needs_string_object() {
        let ont = figure1::ontology();
        let q = parse(
            "SELECT FACT-SETS WHERE $x hasLabel NYC SATISFYING $x doAt NYC WITH SUPPORT = 0.2",
        )
        .unwrap();
        assert!(matches!(bind(&q, &ont), Err(QlError::Invalid(_))));
    }

    #[test]
    fn haslabel_in_satisfying_rejected() {
        let ont = figure1::ontology();
        let q = parse("SELECT FACT-SETS WHERE SATISFYING $x hasLabel \"x\" WITH SUPPORT = 0.2")
            .unwrap();
        assert!(matches!(bind(&q, &ont), Err(QlError::Invalid(_))));
    }

    #[test]
    fn star_on_relation_variable_rejected() {
        let ont = figure1::ontology();
        // construct via AST since the grammar cannot produce it
        let q = Query {
            select: crate::ast::SelectClause {
                format: OutputFormat::FactSets,
                all: false,
                top: None,
                diverse: false,
            },
            asking: None,
            where_patterns: vec![],
            satisfying: crate::ast::SatisfyingClause {
                patterns: vec![TriplePattern {
                    subject: Term::var("x"),
                    predicate: Pred::rel("doAt"),
                    object: Term::elem("NYC"),
                }],
                more: false,
                implying: vec![],
                support_threshold: 0.2,
                confidence_threshold: None,
            },
        };
        assert!(bind(&q, &ont).is_ok());
    }

    #[test]
    fn quoted_element_name_resolves() {
        let ont = figure1::ontology();
        let q = parse(
            "SELECT FACT-SETS WHERE $x nearBy \"Central Park\" SATISFYING $x doAt NYC WITH SUPPORT = 0.2",
        )
        .unwrap();
        let b = bind(&q, &ont).unwrap();
        let cp = ont.vocab().elem_id("Central Park").unwrap();
        match &b.where_patterns[0] {
            WherePattern::Triple {
                o: FactTerm::Const(e),
                ..
            } => assert_eq!(*e, cp),
            other => panic!("{other:?}"),
        }
    }
}
