//! Generation of member populations from planted *habit profiles*.
//!
//! The paper's Section 6.3 experiments ran against real humans; the
//! reproduction substitutes populations whose personal databases realize a
//! chosen ground truth: each profile is a set of concrete facts that a
//! fraction of the population performs together with a target frequency.
//! Members adopt profiles independently, jitter the frequency, and mix in
//! noise facts, so individual answers disagree while population averages
//! approach the targets — the same regime the mining engine faces with a
//! real crowd.

use crate::answer_model::AnswerModel;
use crate::db::PersonalDb;
use crate::member::{MemberBehavior, SimulatedMember};
use ontology::{Fact, FactSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One planted habit: a combination of facts the crowd (partly) shares.
#[derive(Debug, Clone)]
pub struct HabitProfile {
    /// The concrete facts of the habit (one transaction's worth).
    pub facts: Vec<Fact>,
    /// Fraction of members who have this habit at all.
    pub adoption: f64,
    /// Target per-occasion frequency among adopters (the habit's expected
    /// personal support).
    pub frequency: f64,
}

/// Configuration for [`generate`].
#[derive(Debug, Clone)]
pub struct PopulationConfig {
    /// Number of members.
    pub members: usize,
    /// Transactions per member, inclusive range.
    pub transactions: (usize, usize),
    /// Relative jitter applied to each adopter's personal frequency
    /// (uniform in `[-jitter, +jitter]`, multiplicative).
    pub frequency_jitter: f64,
    /// Per-transaction probability of inserting one random noise fact.
    pub noise_prob: f64,
    /// Noise facts to draw from (may be empty).
    pub noise_facts: Vec<Fact>,
    /// Behaviour assigned to every member.
    pub behavior: MemberBehavior,
    /// Answer model assigned to every member.
    pub answer_model: AnswerModel,
    /// Master seed; member `i` uses `seed + i + 1`.
    pub seed: u64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            members: 50,
            transactions: (20, 40),
            frequency_jitter: 0.2,
            noise_prob: 0.3,
            noise_facts: Vec::new(),
            behavior: MemberBehavior::default(),
            answer_model: AnswerModel::Bucketed5,
            seed: 0,
        }
    }
}

/// Generates a population realizing the given habit profiles.
pub fn generate(profiles: &[HabitProfile], cfg: &PopulationConfig) -> Vec<SimulatedMember> {
    let mut master = StdRng::seed_from_u64(cfg.seed);
    (0..cfg.members)
        .map(|i| {
            let member_seed = cfg.seed.wrapping_add(i as u64).wrapping_add(1);
            let mut rng = StdRng::seed_from_u64(master.gen::<u64>() ^ member_seed);
            // which profiles this member adopts, and at what frequency
            let mut personal: Vec<(usize, f64)> = Vec::new();
            for (pi, p) in profiles.iter().enumerate() {
                if !rng.gen_bool(p.adoption.clamp(0.0, 1.0)) {
                    continue;
                }
                let jitter = if cfg.frequency_jitter > 0.0 {
                    1.0 + rng.gen_range(-cfg.frequency_jitter..=cfg.frequency_jitter)
                } else {
                    1.0
                };
                personal.push((pi, (p.frequency * jitter).clamp(0.0, 1.0)));
            }
            let n_tx = rng
                .gen_range(cfg.transactions.0..=cfg.transactions.1)
                .max(1);
            let mut db = PersonalDb::new();
            for _ in 0..n_tx {
                let mut facts: Vec<Fact> = Vec::new();
                for &(pi, freq) in &personal {
                    if rng.gen_bool(freq) {
                        facts.extend_from_slice(&profiles[pi].facts); // PANIC-OK: pi is drawn in 0..profiles.len() above
                    }
                }
                if !cfg.noise_facts.is_empty() && rng.gen_bool(cfg.noise_prob.clamp(0.0, 1.0)) {
                    // PANIC-OK: index drawn in 0..noise_facts.len() below
                    facts.push(cfg.noise_facts[rng.gen_range(0..cfg.noise_facts.len())]);
                }
                db.push(FactSet::from_iter(facts));
            }
            SimulatedMember::new(db, cfg.behavior, cfg.answer_model, member_seed)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::member::SimulatedCrowd;
    use ontology::domains::figure1;
    use ontology::PatternSet;

    fn setup() -> (ontology::Ontology, Vec<HabitProfile>) {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let profiles = vec![
            HabitProfile {
                facts: vec![
                    v.fact("Biking", "doAt", "Central Park").unwrap(),
                    v.fact("Falafel", "eatAt", "Maoz Veg").unwrap(),
                ],
                adoption: 0.9,
                frequency: 0.6,
            },
            HabitProfile {
                facts: vec![v.fact("Feed a Monkey", "doAt", "Bronx Zoo").unwrap()],
                adoption: 0.5,
                frequency: 0.3,
            },
        ];
        (ont, profiles)
    }

    #[test]
    fn deterministic_given_seed() {
        let (_, profiles) = setup();
        let cfg = PopulationConfig {
            members: 10,
            ..Default::default()
        };
        let a = generate(&profiles, &cfg);
        let b = generate(&profiles, &cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.db, y.db);
        }
    }

    #[test]
    fn average_support_tracks_target() {
        let (ont, profiles) = setup();
        let v = ont.vocab();
        let cfg = PopulationConfig {
            members: 200,
            seed: 3,
            ..Default::default()
        };
        let members = generate(&profiles, &cfg);
        let crowd = SimulatedCrowd::new(v, members);
        let p0 = PatternSet::from_facts(profiles[0].facts.iter().copied());
        // expected average ≈ adoption × frequency = 0.54
        let avg = crowd.true_average_support(&p0);
        assert!((avg - 0.54).abs() < 0.08, "avg = {avg}");
        let p1 = PatternSet::from_facts(profiles[1].facts.iter().copied());
        let avg1 = crowd.true_average_support(&p1);
        assert!((avg1 - 0.15).abs() < 0.06, "avg1 = {avg1}");
    }

    #[test]
    fn generalized_patterns_have_higher_support() {
        let (ont, profiles) = setup();
        let v = ont.vocab();
        let cfg = PopulationConfig {
            members: 100,
            seed: 5,
            ..Default::default()
        };
        let members = generate(&profiles, &cfg);
        let crowd = SimulatedCrowd::new(v, members);
        let specific = PatternSet::from_facts([v.fact("Biking", "doAt", "Central Park").unwrap()]);
        let general = PatternSet::from_facts([v.fact("Sport", "doAt", "Central Park").unwrap()]);
        assert!(crowd.true_average_support(&general) >= crowd.true_average_support(&specific));
    }

    #[test]
    fn transaction_counts_in_range() {
        let (_, profiles) = setup();
        let cfg = PopulationConfig {
            members: 30,
            transactions: (5, 9),
            ..Default::default()
        };
        for m in generate(&profiles, &cfg) {
            assert!((5..=9).contains(&m.db.len()));
        }
    }

    #[test]
    fn noise_facts_appear() {
        let (ont, profiles) = setup();
        let v = ont.vocab();
        let noise = vec![v.fact("Pasta", "eatAt", "Pine").unwrap()];
        let cfg = PopulationConfig {
            members: 20,
            noise_prob: 1.0,
            noise_facts: noise.clone(),
            ..Default::default()
        };
        let members = generate(&profiles, &cfg);
        let seen = members
            .iter()
            .any(|m| m.db.transactions().iter().any(|t| t.contains(noise[0])));
        assert!(seen);
    }
}
