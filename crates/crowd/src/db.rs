//! Personal transaction databases and the support measure of Section 2.

use ontology::{FactSet, PatternSet, Vocabulary};

/// The (virtual) personal database `D_u` of one crowd member: a bag of
/// transactions, each the fact-set of one past occasion (Table 3).
///
/// In the real system this database exists only in the member's memory;
/// here it is materialized as simulation ground truth. The mining engine
/// never touches it — it only sees [`Answer`](crate::Answer)s.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PersonalDb {
    transactions: Vec<FactSet>,
}

impl PersonalDb {
    /// An empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a database from transactions.
    pub fn from_transactions(transactions: Vec<FactSet>) -> Self {
        PersonalDb { transactions }
    }

    /// Appends a transaction.
    pub fn push(&mut self, t: FactSet) {
        self.transactions.push(t);
    }

    /// Number of transactions `|D_u|`.
    pub fn len(&self) -> usize {
        self.transactions.len()
    }

    /// Whether the database has no transactions.
    pub fn is_empty(&self) -> bool {
        self.transactions.is_empty()
    }

    /// The transactions.
    pub fn transactions(&self) -> &[FactSet] {
        &self.transactions
    }

    /// `supp_u(A) = |{T ∈ D_u | A ≤ T}| / |D_u|` (Section 2). An empty
    /// database yields support 0.
    pub fn support(&self, vocab: &Vocabulary, pattern: &PatternSet) -> f64 {
        if self.transactions.is_empty() {
            return 0.0;
        }
        let n = self
            .transactions
            .iter()
            .filter(|t| pattern.supported_by(vocab, t))
            .count();
        n as f64 / self.transactions.len() as f64
    }

    /// Number of transactions implying the pattern.
    pub fn count_supporting(&self, vocab: &Vocabulary, pattern: &PatternSet) -> usize {
        self.transactions
            .iter()
            .filter(|t| pattern.supported_by(vocab, t))
            .count()
    }

    /// Whether element `e` (or any specialization of it) occurs in any
    /// transaction fact. Elements that never occur are *irrelevant* for
    /// this member — the basis of the user-guided-pruning click of
    /// Section 6.2.
    pub fn element_relevant(&self, vocab: &Vocabulary, e: ontology::ElemId) -> bool {
        self.transactions.iter().any(|t| {
            t.iter()
                .any(|f| vocab.elem_leq(e, f.subject) || vocab.elem_leq(e, f.object))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontology::domains::figure1;
    use ontology::PatternSet;

    #[test]
    fn support_matches_example_2_7() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let [d1, d2] = figure1::personal_dbs(&ont);
        let db1 = PersonalDb::from_transactions(d1);
        let db2 = PersonalDb::from_transactions(d2);
        let a = PatternSet::from_facts([
            v.fact("Pasta", "eatAt", "Pine").unwrap(),
            v.fact("Activity", "doAt", "Bronx Zoo").unwrap(),
        ]);
        assert!((db1.support(v, &a) - 1.0 / 3.0).abs() < 1e-12);
        assert!((db2.support(v, &a) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_db_support_is_zero() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let db = PersonalDb::new();
        let p = PatternSet::from_facts([v.fact("Biking", "doAt", "Central Park").unwrap()]);
        assert_eq!(db.support(v, &p), 0.0);
    }

    #[test]
    fn empty_pattern_has_full_support() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let [d1, _] = figure1::personal_dbs(&ont);
        let db = PersonalDb::from_transactions(d1);
        assert_eq!(db.support(v, &PatternSet::new()), 1.0);
    }

    #[test]
    fn support_is_monotone_in_pattern_order() {
        // more specific pattern ⇒ lower-or-equal support
        let ont = figure1::ontology();
        let v = ont.vocab();
        let [d1, _] = figure1::personal_dbs(&ont);
        let db = PersonalDb::from_transactions(d1);
        let general = PatternSet::from_facts([v.fact("Sport", "doAt", "Central Park").unwrap()]);
        let specific = PatternSet::from_facts([v.fact("Biking", "doAt", "Central Park").unwrap()]);
        assert!(general.leq(v, &specific));
        assert!(db.support(v, &general) >= db.support(v, &specific));
    }

    #[test]
    fn element_relevance() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let [d1, _] = figure1::personal_dbs(&ont);
        let db = PersonalDb::from_transactions(d1);
        // u1 bikes (transactions T3, T4): Sport is relevant via Biking.
        assert!(db.element_relevant(v, v.elem_id("Sport").unwrap()));
        assert!(db.element_relevant(v, v.elem_id("Biking").unwrap()));
        // u1 never swims.
        assert!(!db.element_relevant(v, v.elem_id("Swimming").unwrap()));
        assert!(!db.element_relevant(v, v.elem_id("Water Sport").unwrap()));
    }
}
