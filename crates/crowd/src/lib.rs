//! # crowd — the individual-knowledge substrate (Section 2) and simulated
//! crowd members (Sections 4.2, 6.2–6.3)
//!
//! The paper models each crowd member `u` as owning a **virtual** personal
//! database `D_u`: a bag of transactions (fact-sets), one per past occasion,
//! that "is not recorded anywhere, and cannot be directly accessed like a
//! standard database". The only access is by *asking questions*:
//!
//! * **concrete questions** — "How often do you go biking in Central Park
//!   and rent bikes at the Boathouse?" → the support of a pattern-set;
//! * **specialization questions** — "What type of sport do you do in
//!   Central Park? How often?" → a more specific significant pattern.
//!
//! This crate provides:
//! * [`PersonalDb`] — a materialized transaction database with the
//!   implication-based support of Section 2 (used as simulation ground
//!   truth; the mining engine never reads it directly);
//! * [`Question`] / [`Answer`] / [`CrowdSource`] — the question protocol the
//!   engine speaks, including the UI optimizations of Section 6.2
//!   (user-guided pruning, "none of these", volunteered MORE tips);
//! * [`AnswerModel`] — how a true support becomes a reported one (the
//!   5-point never/rarely/sometimes/often/very-often scale of the paper's
//!   UI, exact answers, or bounded noise);
//! * [`SimulatedMember`] / [`SimulatedCrowd`] — deterministic, seeded crowd
//!   simulation (the substitution for the paper's 248 human contributors);
//! * [`population`] — generation of member populations from planted habit
//!   profiles;
//! * [`quality`] — the consistency (spammer) filter sketched in
//!   Section 4.2: support of a more specific pattern can never exceed that
//!   of a more general one;
//! * [`parallel`] — members as concurrent worker-thread sessions
//!   (Section 4.2's "multiple crowd-members working in parallel");
//! * [`CrowdPolicy`] — the crowd-access policy layer (per-question
//!   timeout, capped retry with deterministic backoff) that lets the
//!   engines degrade gracefully when answers never arrive.

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

mod answer_model;
mod db;
mod member;
pub mod parallel;
mod policy;
pub mod population;
pub mod quality;
mod question;

pub use answer_model::AnswerModel;
pub use db::PersonalDb;
pub use member::{MemberBehavior, SessionSnapshot, SimulatedCrowd, SimulatedMember};
pub use parallel::{with_parallel_crowd, ParallelHandle};
pub use policy::CrowdPolicy;
pub use question::{Answer, CrowdSource, MemberId, Question};
