//! Deterministic simulated crowd members — the reproduction's substitute
//! for the paper's 248 human contributors (see DESIGN.md §5).

use crate::answer_model::AnswerModel;
use crate::db::PersonalDb;
use crate::question::{Answer, CrowdSource, MemberId, Question};
use ontology::{Fact, PatternSet, Vocabulary};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Behavioural knobs of a simulated member, calibrated against the answer
/// mix the paper observed (Section 6.3: 12% specialization answers, half
/// of them "none of these", 13% user-guided pruning).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemberBehavior {
    /// Maximum questions the member answers before leaving the session
    /// (`None` = unlimited). The paper observed ~20 answers per member per
    /// query.
    pub session_limit: Option<usize>,
    /// Probability of answering a zero-support concrete question with a
    /// user-guided-pruning click instead (when an irrelevant element
    /// occurs in the question).
    pub pruning_prob: f64,
    /// Probability of volunteering a MORE tip on a positively-supported
    /// concrete question.
    pub more_tip_prob: f64,
    /// A spammer answers uniformly at random, ignoring their database
    /// (used to exercise the quality filter of Section 4.2).
    pub spammer: bool,
    /// Every `k`-th question *received* goes unanswered within the
    /// engine's timeout ([`Answer::NoResponse`]): the member stalls but
    /// stays in the session, so a retry under a
    /// [`CrowdPolicy`](crate::CrowdPolicy) succeeds. Stalled questions do
    /// not count against [`session_limit`](Self::session_limit) — the
    /// member never saw them through. `None` = never stalls.
    pub stall_every: Option<usize>,
}

impl Default for MemberBehavior {
    fn default() -> Self {
        MemberBehavior {
            session_limit: None,
            pruning_prob: 0.0,
            more_tip_prob: 0.0,
            spammer: false,
            stall_every: None,
        }
    }
}

/// One simulated crowd member: a ground-truth [`PersonalDb`], behaviour
/// knobs, an [`AnswerModel`] and a private seeded RNG.
#[derive(Debug, Clone)]
pub struct SimulatedMember {
    /// The member's ground-truth personal database.
    pub db: PersonalDb,
    /// Behaviour knobs.
    pub behavior: MemberBehavior,
    /// How true supports are reported.
    pub answer_model: AnswerModel,
    /// Profile labels (matched by the `ASKING "label"` clause).
    pub profile: Vec<String>,
    rng: StdRng,
    questions_answered: usize,
    asks_seen: usize,
}

impl SimulatedMember {
    /// Creates a member. All randomness derives from `seed`.
    pub fn new(
        db: PersonalDb,
        behavior: MemberBehavior,
        answer_model: AnswerModel,
        seed: u64,
    ) -> Self {
        SimulatedMember {
            db,
            behavior,
            answer_model,
            profile: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            questions_answered: 0,
            asks_seen: 0,
        }
    }

    /// Attaches profile labels (builder style).
    pub fn with_profile(mut self, labels: &[&str]) -> Self {
        self.profile = labels.iter().map(|s| (*s).to_owned()).collect();
        self
    }

    /// Questions answered so far in the current session.
    pub fn questions_answered(&self) -> usize {
        self.questions_answered
    }

    /// Captures the member's mutable session state — the RNG position and
    /// the question counter are the *only* mutable fields `answer`
    /// touches. Used by the speculative-ask protocol in
    /// [`with_parallel_crowd`](crate::with_parallel_crowd): a worker
    /// snapshots before answering speculatively and restores on
    /// mis-speculation, so speculation can never perturb the member's
    /// observable answer stream.
    pub fn session_snapshot(&self) -> SessionSnapshot {
        SessionSnapshot {
            rng: self.rng.clone(),
            questions_answered: self.questions_answered,
            asks_seen: self.asks_seen,
        }
    }

    /// Restores the state captured by [`Self::session_snapshot`].
    pub fn restore_session(&mut self, snapshot: SessionSnapshot) {
        self.rng = snapshot.rng;
        self.questions_answered = snapshot.questions_answered;
        self.asks_seen = snapshot.asks_seen;
    }

    /// Resets the per-session question counter (a member returning for a
    /// new query).
    pub fn reset_session(&mut self) {
        self.questions_answered = 0;
        self.asks_seen = 0;
    }

    /// Answers a question against the member's ground truth.
    pub fn answer(&mut self, vocab: &Vocabulary, q: &Question) -> Answer {
        if let Some(limit) = self.behavior.session_limit {
            if self.questions_answered >= limit {
                return Answer::Unavailable;
            }
        }
        self.asks_seen += 1;
        if let Some(k) = self.behavior.stall_every {
            if k > 0 && self.asks_seen.is_multiple_of(k) {
                return Answer::NoResponse;
            }
        }
        self.questions_answered += 1;
        if self.behavior.spammer {
            return self.spam_answer(q);
        }
        match q {
            Question::Concrete { pattern } => self.answer_concrete(vocab, pattern),
            Question::Specialization { options, .. } => self.answer_specialization(vocab, options),
        }
    }

    fn spam_answer(&mut self, q: &Question) -> Answer {
        match q {
            Question::Concrete { .. } => Answer::Support {
                support: (self.rng.gen_range(0..=4) as f64) * 0.25,
                more_tip: None,
            },
            Question::Specialization { options, .. } => {
                if options.is_empty() {
                    Answer::NoneOfThese
                } else {
                    Answer::Specialized {
                        choice: self.rng.gen_range(0..options.len()),
                        support: (self.rng.gen_range(1..=4) as f64) * 0.25,
                    }
                }
            }
        }
    }

    fn answer_concrete(&mut self, vocab: &Vocabulary, pattern: &PatternSet) -> Answer {
        let true_support = self.db.support(vocab, pattern);
        if true_support == 0.0 && self.behavior.pruning_prob > 0.0 {
            if let Some(elem) = self.irrelevant_element(vocab, pattern) {
                if self.rng.gen_bool(self.behavior.pruning_prob) {
                    return Answer::Irrelevant { elem };
                }
            }
        }
        let support = self.answer_model.report(true_support, &mut self.rng);
        let more_tip = if true_support > 0.0
            && self.behavior.more_tip_prob > 0.0
            && self.rng.gen_bool(self.behavior.more_tip_prob)
        {
            self.best_cooccurring_fact(vocab, pattern)
        } else {
            None
        };
        Answer::Support { support, more_tip }
    }

    fn answer_specialization(&mut self, vocab: &Vocabulary, options: &[PatternSet]) -> Answer {
        let mut best: Option<(usize, f64)> = None;
        for (i, opt) in options.iter().enumerate() {
            let s = self.db.support(vocab, opt);
            if s > 0.0 && best.is_none_or(|(_, b)| s > b) {
                best = Some((i, s));
            }
        }
        match best {
            Some((choice, s)) => Answer::Specialized {
                choice,
                support: self.answer_model.report(s, &mut self.rng),
            },
            None => Answer::NoneOfThese,
        }
    }

    /// A constant element of `pattern` that never occurs (even via
    /// specializations) in the member's history.
    fn irrelevant_element(
        &self,
        vocab: &Vocabulary,
        pattern: &PatternSet,
    ) -> Option<ontology::ElemId> {
        pattern
            .iter()
            .flat_map(|p| [p.subject, p.object])
            .flatten()
            .find(|&e| !self.db.element_relevant(vocab, e))
    }

    /// The most frequent concrete fact co-occurring with `pattern` in the
    /// member's supporting transactions that is not already covered by the
    /// pattern. Ties break on fact order for determinism.
    fn best_cooccurring_fact(&self, vocab: &Vocabulary, pattern: &PatternSet) -> Option<Fact> {
        let mut counts: HashMap<Fact, usize> = HashMap::new();
        for t in self.db.transactions() {
            if !pattern.supported_by(vocab, t) {
                continue;
            }
            for g in t.iter() {
                let covered = pattern.iter().any(|p| p.leq_fact(vocab, g));
                if !covered {
                    *counts.entry(g).or_insert(0) += 1;
                }
            }
        }
        counts
            .into_iter()
            .max_by(|(fa, ca), (fb, cb)| ca.cmp(cb).then(fb.cmp(fa)))
            .map(|(f, _)| f)
    }
}

/// An opaque snapshot of a [`SimulatedMember`]'s mutable session state
/// (RNG position + question counter); see
/// [`SimulatedMember::session_snapshot`].
#[derive(Debug, Clone)]
pub struct SessionSnapshot {
    rng: StdRng,
    questions_answered: usize,
    asks_seen: usize,
}

/// A crowd of simulated members sharing a vocabulary, implementing
/// [`CrowdSource`].
#[derive(Debug)]
pub struct SimulatedCrowd<'a> {
    vocab: &'a Vocabulary,
    members: Vec<SimulatedMember>,
    questions: usize,
}

impl<'a> SimulatedCrowd<'a> {
    /// Creates a crowd.
    pub fn new(vocab: &'a Vocabulary, members: Vec<SimulatedMember>) -> Self {
        SimulatedCrowd {
            vocab,
            members,
            questions: 0,
        }
    }

    /// Access to a member (e.g. to inspect ground truth in tests).
    pub fn member(&self, id: MemberId) -> &SimulatedMember {
        &self.members[id.index()] // PANIC-OK: member ids are minted by this registry and stay in range
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the crowd is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The shared vocabulary.
    pub fn vocab(&self) -> &'a Vocabulary {
        self.vocab
    }

    /// Average true support of `pattern` over all members (simulation
    /// ground truth, used to validate mining output in tests).
    pub fn true_average_support(&self, pattern: &PatternSet) -> f64 {
        if self.members.is_empty() {
            return 0.0;
        }
        let sum: f64 = self
            .members
            .iter()
            .map(|m| m.db.support(self.vocab, pattern))
            .sum();
        sum / self.members.len() as f64
    }
}

impl CrowdSource for SimulatedCrowd<'_> {
    fn members(&self) -> Vec<MemberId> {
        (0..self.members.len() as u32).map(MemberId).collect()
    }

    fn ask(&mut self, member: MemberId, question: &Question) -> Answer {
        self.questions += 1;
        self.members[member.index()].answer(self.vocab, question) // PANIC-OK: member ids are minted by this registry and stay in range
    }

    fn questions_asked(&self) -> usize {
        self.questions
    }

    fn member_has_profile(&self, member: MemberId, label: &str) -> bool {
        self.members[member.index()] // PANIC-OK: member ids are minted by this registry and stay in range
            .profile
            .iter()
            .any(|l| l == label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ontology::domains::figure1;
    use ontology::PatternSet;

    fn u1(behavior: MemberBehavior, model: AnswerModel) -> (ontology::Ontology, SimulatedMember) {
        let ont = figure1::ontology();
        let [d1, _] = figure1::personal_dbs(&ont);
        let m = SimulatedMember::new(PersonalDb::from_transactions(d1), behavior, model, 7);
        (ont, m)
    }

    #[test]
    fn concrete_answer_reports_true_support() {
        let (ont, mut m) = u1(MemberBehavior::default(), AnswerModel::Exact);
        let v = ont.vocab();
        let p = PatternSet::from_facts([v.fact("Biking", "doAt", "Central Park").unwrap()]);
        match m.answer(v, &Question::Concrete { pattern: p }) {
            Answer::Support { support, more_tip } => {
                assert!((support - 1.0 / 3.0).abs() < 1e-12);
                assert!(more_tip.is_none());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn session_limit_yields_unavailable() {
        let behavior = MemberBehavior {
            session_limit: Some(2),
            ..Default::default()
        };
        let (ont, mut m) = u1(behavior, AnswerModel::Exact);
        let v = ont.vocab();
        let p = PatternSet::new();
        let q = Question::Concrete { pattern: p };
        assert!(matches!(m.answer(v, &q), Answer::Support { .. }));
        assert!(matches!(m.answer(v, &q), Answer::Support { .. }));
        assert!(matches!(m.answer(v, &q), Answer::Unavailable));
        m.reset_session();
        assert!(matches!(m.answer(v, &q), Answer::Support { .. }));
    }

    #[test]
    fn pruning_click_on_irrelevant_element() {
        let behavior = MemberBehavior {
            pruning_prob: 1.0,
            ..Default::default()
        };
        let (ont, mut m) = u1(behavior, AnswerModel::Exact);
        let v = ont.vocab();
        // u1 never swims: a question about swimming should trigger pruning.
        let p = PatternSet::from_facts([v.fact("Swimming", "doAt", "Central Park").unwrap()]);
        match m.answer(v, &Question::Concrete { pattern: p }) {
            Answer::Irrelevant { elem } => assert_eq!(elem, v.elem_id("Swimming").unwrap()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn no_pruning_when_support_positive() {
        let behavior = MemberBehavior {
            pruning_prob: 1.0,
            ..Default::default()
        };
        let (ont, mut m) = u1(behavior, AnswerModel::Exact);
        let v = ont.vocab();
        let p = PatternSet::from_facts([v.fact("Biking", "doAt", "Central Park").unwrap()]);
        assert!(matches!(
            m.answer(v, &Question::Concrete { pattern: p }),
            Answer::Support { .. }
        ));
    }

    #[test]
    fn more_tip_is_the_boathouse() {
        // Asking u1 about biking in Central Park + falafel at Maoz: the
        // co-occurring tip is renting bikes at the Boathouse (Example 3.2).
        let behavior = MemberBehavior {
            more_tip_prob: 1.0,
            ..Default::default()
        };
        let (ont, mut m) = u1(behavior, AnswerModel::Exact);
        let v = ont.vocab();
        let p = PatternSet::from_facts([
            v.fact("Biking", "doAt", "Central Park").unwrap(),
            v.fact("Falafel", "eatAt", "Maoz Veg").unwrap(),
        ]);
        match m.answer(v, &Question::Concrete { pattern: p }) {
            Answer::Support {
                more_tip: Some(f), ..
            } => {
                assert_eq!(v.fact_to_string(f), "Rent Bikes doAt Boathouse");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn specialization_picks_most_frequent_option() {
        let (ont, mut m) = u1(MemberBehavior::default(), AnswerModel::Exact);
        let v = ont.vocab();
        let base = PatternSet::from_facts([v.fact("Sport", "doAt", "Central Park").unwrap()]);
        let options = vec![
            PatternSet::from_facts([v.fact("Swimming", "doAt", "Central Park").unwrap()]),
            PatternSet::from_facts([v.fact("Biking", "doAt", "Central Park").unwrap()]), // 2/6
            PatternSet::from_facts([v.fact("Baseball", "doAt", "Central Park").unwrap()]), // 1/6
        ];
        match m.answer(v, &Question::Specialization { base, options }) {
            Answer::Specialized { choice, support } => {
                assert_eq!(choice, 1);
                assert!((support - 1.0 / 3.0).abs() < 1e-12);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn specialization_none_of_these() {
        let (ont, mut m) = u1(MemberBehavior::default(), AnswerModel::Exact);
        let v = ont.vocab();
        let base = PatternSet::from_facts([v.fact("Water Sport", "doAt", "Central Park").unwrap()]);
        let options = vec![
            PatternSet::from_facts([v.fact("Swimming", "doAt", "Central Park").unwrap()]),
            PatternSet::from_facts([v.fact("Water Polo", "doAt", "Central Park").unwrap()]),
        ];
        assert_eq!(
            m.answer(v, &Question::Specialization { base, options }),
            Answer::NoneOfThese
        );
    }

    #[test]
    fn spammer_ignores_ground_truth() {
        let behavior = MemberBehavior {
            spammer: true,
            ..Default::default()
        };
        let (ont, mut m) = u1(behavior, AnswerModel::Exact);
        let v = ont.vocab();
        // ask many times about an impossible pattern; a spammer will
        // eventually report non-zero support
        let p = PatternSet::from_facts([v.fact("Swimming", "doAt", "Central Park").unwrap()]);
        let mut saw_nonzero = false;
        for _ in 0..50 {
            if let Answer::Support { support, .. } =
                m.answer(v, &Question::Concrete { pattern: p.clone() })
            {
                if support > 0.0 {
                    saw_nonzero = true;
                }
            }
        }
        assert!(saw_nonzero);
    }

    #[test]
    fn stalling_member_recovers_on_retry() {
        let behavior = MemberBehavior {
            stall_every: Some(2),
            ..Default::default()
        };
        let (ont, mut m) = u1(behavior, AnswerModel::Exact);
        let v = ont.vocab();
        let p = PatternSet::from_facts([v.fact("Biking", "doAt", "Central Park").unwrap()]);
        let q = Question::Concrete { pattern: p };
        // 1st ask answers, 2nd stalls, the retry (3rd ask) answers again —
        // and the stall never counts against the session limit
        assert!(matches!(m.answer(v, &q), Answer::Support { .. }));
        assert!(matches!(m.answer(v, &q), Answer::NoResponse));
        assert!(matches!(m.answer(v, &q), Answer::Support { .. }));
        assert_eq!(m.questions_answered(), 2);
    }

    #[test]
    fn crowd_counts_questions() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let [d1, d2] = figure1::personal_dbs(&ont);
        let members = vec![
            SimulatedMember::new(
                PersonalDb::from_transactions(d1),
                MemberBehavior::default(),
                AnswerModel::Exact,
                1,
            ),
            SimulatedMember::new(
                PersonalDb::from_transactions(d2),
                MemberBehavior::default(),
                AnswerModel::Exact,
                2,
            ),
        ];
        let mut crowd = SimulatedCrowd::new(v, members);
        assert_eq!(crowd.members().len(), 2);
        let p = PatternSet::from_facts([v.fact("Biking", "doAt", "Central Park").unwrap()]);
        // true average support = avg(1/3, 1/2) = 5/12 (Example 3.1)
        assert!((crowd.true_average_support(&p) - 5.0 / 12.0).abs() < 1e-12);
        crowd.ask(MemberId(0), &Question::Concrete { pattern: p.clone() });
        crowd.ask(MemberId(1), &Question::Concrete { pattern: p });
        assert_eq!(crowd.questions_asked(), 2);
    }
}
