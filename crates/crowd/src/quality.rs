//! Answer-quality filtering (Section 4.2, "Crowd member selection").
//!
//! The paper proposes checking the consistency between answers of the same
//! member, "taking advantage of the fact that the support for more specific
//! assignments cannot be larger. In this manner, we can easily filter out
//! spammers, while perhaps still allowing for small inconsistency in a
//! cooperative member's answers."

use ontology::{PatternSet, Vocabulary};

/// One recorded (pattern, reported support) observation for a member.
#[derive(Debug, Clone)]
pub struct Observation {
    /// The pattern the member was asked about.
    pub pattern: PatternSet,
    /// The support they reported.
    pub support: f64,
}

/// Result of a consistency check over one member's answers.
#[derive(Debug, Clone, PartialEq)]
pub struct ConsistencyReport {
    /// Number of comparable pairs (one pattern ≤ the other).
    pub comparable_pairs: usize,
    /// Pairs violating monotonicity beyond the tolerance: the more
    /// specific pattern was reported with strictly larger support.
    pub violations: usize,
    /// `violations / comparable_pairs` (0 when nothing is comparable).
    pub violation_rate: f64,
}

impl ConsistencyReport {
    /// Classifies the member as a spammer when the violation rate exceeds
    /// `rate_threshold` (the paper allows "small inconsistency in a
    /// cooperative member's answers").
    pub fn is_spammer(&self, rate_threshold: f64) -> bool {
        self.comparable_pairs > 0 && self.violation_rate > rate_threshold
    }
}

/// Checks monotonicity over a member's recorded answers: whenever
/// `a.pattern ≤ b.pattern` (b is more specific), consistency requires
/// `b.support ≤ a.support + tolerance`.
pub fn check_consistency(
    vocab: &Vocabulary,
    observations: &[Observation],
    tolerance: f64,
) -> ConsistencyReport {
    let mut comparable_pairs = 0;
    let mut violations = 0;
    for (i, a) in observations.iter().enumerate() {
        // PANIC-OK: slicing from i+1 where i < len is always in range
        for b in &observations[i + 1..] {
            let (gen_obs, spec_obs) = if a.pattern.leq(vocab, &b.pattern) {
                (a, b)
            } else if b.pattern.leq(vocab, &a.pattern) {
                (b, a)
            } else {
                continue;
            };
            comparable_pairs += 1;
            if spec_obs.support > gen_obs.support + tolerance {
                violations += 1;
            }
        }
    }
    let violation_rate = if comparable_pairs == 0 {
        0.0
    } else {
        violations as f64 / comparable_pairs as f64
    };
    ConsistencyReport {
        comparable_pairs,
        violations,
        violation_rate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer_model::AnswerModel;
    use crate::db::PersonalDb;
    use crate::member::{MemberBehavior, SimulatedMember};
    use crate::question::{Answer, Question};
    use ontology::domains::figure1;

    fn obs(v: &Vocabulary, triples: &[(&str, &str, &str, f64)]) -> Vec<Observation> {
        triples
            .iter()
            .map(|&(s, r, o, supp)| Observation {
                pattern: PatternSet::from_facts([v.fact(s, r, o).unwrap()]),
                support: supp,
            })
            .collect()
    }

    #[test]
    fn consistent_answers_pass() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let observations = obs(
            v,
            &[
                ("Sport", "doAt", "Central Park", 0.5),
                ("Biking", "doAt", "Central Park", 0.3),
                ("Ball Game", "doAt", "Central Park", 0.25),
            ],
        );
        let report = check_consistency(v, &observations, 0.01);
        assert_eq!(report.comparable_pairs, 2);
        assert_eq!(report.violations, 0);
        assert!(!report.is_spammer(0.3));
    }

    #[test]
    fn monotonicity_violation_detected() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let observations = obs(
            v,
            &[
                ("Sport", "doAt", "Central Park", 0.25),
                ("Biking", "doAt", "Central Park", 0.75), // more specific, larger!
            ],
        );
        let report = check_consistency(v, &observations, 0.01);
        assert_eq!(report.comparable_pairs, 1);
        assert_eq!(report.violations, 1);
        assert!(report.is_spammer(0.3));
    }

    #[test]
    fn tolerance_allows_small_inconsistency() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let observations = obs(
            v,
            &[
                ("Sport", "doAt", "Central Park", 0.5),
                ("Biking", "doAt", "Central Park", 0.55),
            ],
        );
        assert_eq!(check_consistency(v, &observations, 0.1).violations, 0);
        assert_eq!(check_consistency(v, &observations, 0.01).violations, 1);
    }

    #[test]
    fn incomparable_patterns_ignored() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let observations = obs(
            v,
            &[
                ("Biking", "doAt", "Central Park", 0.1),
                ("Pasta", "eatAt", "Pine", 0.9),
            ],
        );
        let report = check_consistency(v, &observations, 0.01);
        assert_eq!(report.comparable_pairs, 0);
        assert!(!report.is_spammer(0.0));
    }

    #[test]
    fn honest_member_is_consistent_spammer_is_not() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let [d1, _] = figure1::personal_dbs(&ont);
        let chain: Vec<PatternSet> = [
            ("Activity", "doAt", "Central Park"),
            ("Sport", "doAt", "Central Park"),
            ("Ball Game", "doAt", "Central Park"),
            ("Basketball", "doAt", "Central Park"),
        ]
        .iter()
        .map(|&(s, r, o)| PatternSet::from_facts([v.fact(s, r, o).unwrap()]))
        .collect();

        let run = |spammer: bool, seed: u64| {
            let mut m = SimulatedMember::new(
                PersonalDb::from_transactions(d1.clone()),
                MemberBehavior {
                    spammer,
                    ..Default::default()
                },
                AnswerModel::Exact,
                seed,
            );
            let mut observations = Vec::new();
            for p in &chain {
                if let Answer::Support { support, .. } =
                    m.answer(v, &Question::Concrete { pattern: p.clone() })
                {
                    observations.push(Observation {
                        pattern: p.clone(),
                        support,
                    });
                }
            }
            check_consistency(v, &observations, 0.01)
        };

        assert_eq!(run(false, 1).violations, 0);
        // a random answerer violates monotonicity on some seed quickly
        let spam_violations: usize = (0..10).map(|s| run(true, s).violations).sum();
        assert!(spam_violations > 0);
    }
}
