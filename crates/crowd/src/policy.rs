//! The crowd-access policy: per-question timeout, capped retry with
//! deterministic backoff.
//!
//! The paper's algorithms assume every question eventually gets an answer;
//! a production crowd stalls, drops answers, and churns (the failure
//! surface CDAS-style quality/latency control manages). The policy layer
//! turns those faults into three deterministic outcomes the engines can
//! handle:
//!
//! * an answer arrives within [`CrowdPolicy::timeout_ticks`] → normal path;
//! * [`Answer::NoResponse`](crate::Answer::NoResponse) → up to
//!   [`CrowdPolicy::max_retries`] re-asks, each preceded by an
//!   exponentially growing backoff signalled through
//!   [`CrowdSource::advance_clock`](crate::CrowdSource::advance_clock);
//! * retries exhausted → the engine *gives up on the question*, leaves the
//!   pattern `Unknown`, and records it in the run's partial-answer
//!   manifest — it never panics and never silently reports completeness.

/// Retry/timeout policy for one engine run. All fields are in logical
/// clock ticks, so a given policy is bit-reproducible under simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrowdPolicy {
    /// Ticks the engine waits for an answer before treating the question
    /// as timed out. Interpreted by the crowd source (a simulated source
    /// converts an answer delayed beyond this into
    /// [`Answer::NoResponse`](crate::Answer::NoResponse)).
    pub timeout_ticks: u64,
    /// Re-asks after a `NoResponse` before giving up on the question.
    pub max_retries: u32,
    /// Backoff before retry `k` (0-based) is `backoff_base << k` ticks —
    /// deterministic exponential backoff.
    pub backoff_base: u64,
}

impl Default for CrowdPolicy {
    fn default() -> Self {
        CrowdPolicy {
            timeout_ticks: 4,
            max_retries: 2,
            backoff_base: 1,
        }
    }
}

impl CrowdPolicy {
    /// A policy that never retries (the engine gives up on the first
    /// timeout). Useful as a differential baseline in the simulator.
    pub fn no_retries() -> Self {
        CrowdPolicy {
            max_retries: 0,
            ..Default::default()
        }
    }

    /// Backoff ticks before the `attempt`-th retry (0-based).
    pub fn backoff(&self, attempt: u32) -> u64 {
        self.backoff_base << attempt.min(16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_exponential_and_capped() {
        let p = CrowdPolicy {
            backoff_base: 2,
            ..Default::default()
        };
        assert_eq!(p.backoff(0), 2);
        assert_eq!(p.backoff(1), 4);
        assert_eq!(p.backoff(3), 16);
        // the shift saturates so a pathological retry count cannot overflow
        assert_eq!(p.backoff(40), 2 << 16);
    }
}
