//! Answer models: how a member's true support becomes a reported value.

use rand::rngs::StdRng;
use rand::Rng;

/// Maps a true support value to the value the member reports.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum AnswerModel {
    /// Report the true support exactly.
    #[default]
    Exact,
    /// The paper's UI scale: the member clicks one of "never", "rarely",
    /// "sometimes", "often", "very often", interpreted as supports
    /// 0, 0.25, 0.5, 0.75 and 1 (Section 6.2). We round the true support
    /// to the nearest bucket.
    Bucketed5,
    /// Additive uniform noise in `[-spread, +spread]`, clamped to `[0, 1]`
    /// (people misremember frequencies).
    Noisy {
        /// Half-width of the uniform noise.
        spread: f64,
    },
}

impl AnswerModel {
    /// Applies the model. `rng` is only consulted by [`Self::Noisy`].
    pub fn report(self, true_support: f64, rng: &mut StdRng) -> f64 {
        match self {
            AnswerModel::Exact => true_support,
            AnswerModel::Bucketed5 => (true_support * 4.0).round() / 4.0,
            AnswerModel::Noisy { spread } => {
                let noise = if spread > 0.0 {
                    rng.gen_range(-spread..=spread)
                } else {
                    0.0
                };
                (true_support + noise).clamp(0.0, 1.0)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn exact_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(AnswerModel::Exact.report(0.37, &mut rng), 0.37);
    }

    #[test]
    fn buckets_round_to_quarters() {
        let mut rng = StdRng::seed_from_u64(0);
        let m = AnswerModel::Bucketed5;
        assert_eq!(m.report(0.0, &mut rng), 0.0);
        assert_eq!(m.report(0.1, &mut rng), 0.0);
        assert_eq!(m.report(0.2, &mut rng), 0.25);
        assert_eq!(m.report(0.33, &mut rng), 0.25);
        assert_eq!(m.report(0.4, &mut rng), 0.5);
        assert_eq!(m.report(0.9, &mut rng), 1.0);
    }

    #[test]
    fn noisy_stays_in_range_and_is_seed_deterministic() {
        let m = AnswerModel::Noisy { spread: 0.2 };
        let mut r1 = StdRng::seed_from_u64(42);
        let mut r2 = StdRng::seed_from_u64(42);
        for i in 0..100 {
            let t = (i as f64) / 100.0;
            let a = m.report(t, &mut r1);
            let b = m.report(t, &mut r2);
            assert_eq!(a, b);
            assert!((0.0..=1.0).contains(&a));
        }
    }

    #[test]
    fn zero_spread_noise_is_exact() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(
            AnswerModel::Noisy { spread: 0.0 }.report(0.5, &mut rng),
            0.5
        );
    }
}
