//! The question/answer protocol between the mining engine and the crowd.

use ontology::{ElemId, Fact, PatternSet};

/// Identifier of a crowd member within a [`CrowdSource`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MemberId(pub u32);

impl MemberId {
    /// The id as an array index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A question posed to one crowd member (Section 2, "Questions to the
/// crowd").
#[derive(Debug, Clone, PartialEq)]
pub enum Question {
    /// A *concrete* question: "How often do you ⟨pattern⟩?" — retrieves
    /// the member's support for the pattern-set.
    Concrete {
        /// The pattern-set asked about.
        pattern: PatternSet,
    },
    /// A *specialization* question: "What type of … do you do? How often?"
    /// The UI presents auto-completion `options` (more specific
    /// pattern-sets consistent with the query); the member picks one that
    /// is significant for them, or answers "none of these".
    Specialization {
        /// The base pattern being specialized.
        base: PatternSet,
        /// The candidate specializations offered.
        options: Vec<PatternSet>,
    },
}

impl Question {
    /// The pattern the question is about (the base, for specializations).
    pub fn pattern(&self) -> &PatternSet {
        match self {
            Question::Concrete { pattern } => pattern,
            Question::Specialization { base, .. } => base,
        }
    }
}

/// A crowd member's answer.
#[derive(Debug, Clone, PartialEq)]
pub enum Answer {
    /// Answer to a concrete question: the reported support, plus an
    /// optional volunteered MORE fact ("rent the bikes at the Boathouse")
    /// — the UI's *more* button (Section 6.2).
    Support {
        /// Reported support in `[0, 1]`.
        support: f64,
        /// A frequently co-occurring fact the member volunteered.
        more_tip: Option<Fact>,
    },
    /// Answer to a specialization question: the index of the chosen option
    /// and its reported support.
    Specialized {
        /// Index into the question's `options`.
        choice: usize,
        /// Reported support of the chosen option.
        support: f64,
    },
    /// "None of these": every offered specialization has support 0 — the
    /// engine learns the answers to many concrete questions at once
    /// (Section 6.2).
    NoneOfThese,
    /// User-guided pruning: the member clicked a value as irrelevant;
    /// every assignment involving this element **or a more specific one**
    /// has support 0 for this member (Section 6.2).
    Irrelevant {
        /// The irrelevant element.
        elem: ElemId,
    },
    /// The member has left the session (Section 4.2: "the outer loop …
    /// can be terminated at any point if the user does not wish to answer
    /// more questions").
    Unavailable,
    /// No answer arrived within the per-question timeout of the engine's
    /// [`CrowdPolicy`](crate::CrowdPolicy). Transient: the member is still
    /// in the session and may answer a retry — unlike
    /// [`Answer::Unavailable`], this must never deactivate the member.
    /// Never cached (there is nothing to cache).
    NoResponse,
}

/// A source of crowd answers. The production implementation would be a
/// crowdsourcing UI; tests and experiments use [`SimulatedCrowd`](crate::SimulatedCrowd)
/// or the planted-ground-truth oracle in `oassis-core`.
pub trait CrowdSource {
    /// The members currently available.
    fn members(&self) -> Vec<MemberId>;

    /// Poses `question` to `member`.
    fn ask(&mut self, member: MemberId, question: &Question) -> Answer;

    /// Total number of questions asked so far (bookkeeping for the
    /// experiments' question counts).
    fn questions_asked(&self) -> usize;

    /// Whether `member` carries a profile label (for the `ASKING "label"`
    /// crowd-selection clause, a Section-8 extension). Sources without
    /// profile information accept everyone.
    fn member_has_profile(&self, member: MemberId, label: &str) -> bool {
        let _ = (member, label);
        true
    }

    /// Whether [`Self::prefetch`] does anything. Engines only spend time
    /// predicting upcoming questions when this returns `true`; the
    /// default sequential sources gain nothing from speculation and keep
    /// their exact historical code path.
    fn supports_prefetch(&self) -> bool {
        false
    }

    /// Hints that `batch` questions are *likely* (not certain) to be
    /// asked next, one per member at most. A concurrent source may start
    /// computing the answers speculatively; a later mismatching (or
    /// missing) [`Self::ask`] must roll the speculation back so member
    /// state evolves exactly as if the hint never happened. Purely a
    /// performance channel: it must never change any answer, and it does
    /// not count towards [`Self::questions_asked`]. Default: no-op.
    fn prefetch(&mut self, batch: &[(MemberId, Question)]) {
        let _ = batch;
    }

    /// Notifies the source that the engine is waiting `ticks` logical
    /// clock ticks (retry backoff of the [`CrowdPolicy`](crate::CrowdPolicy)).
    /// Simulated sources advance their event clock so delayed answers can
    /// arrive; real sources (and the default) ignore it — wall-clock
    /// waiting belongs to the transport, not the protocol.
    fn advance_clock(&mut self, ticks: u64) {
        let _ = ticks;
    }
}

impl<C: CrowdSource + ?Sized> CrowdSource for &mut C {
    fn members(&self) -> Vec<MemberId> {
        (**self).members()
    }

    fn ask(&mut self, member: MemberId, question: &Question) -> Answer {
        (**self).ask(member, question)
    }

    fn questions_asked(&self) -> usize {
        (**self).questions_asked()
    }

    fn member_has_profile(&self, member: MemberId, label: &str) -> bool {
        (**self).member_has_profile(member, label)
    }

    fn supports_prefetch(&self) -> bool {
        (**self).supports_prefetch()
    }

    fn prefetch(&mut self, batch: &[(MemberId, Question)]) {
        (**self).prefetch(batch)
    }

    fn advance_clock(&mut self, ticks: u64) {
        (**self).advance_clock(ticks)
    }
}
