//! Concurrent crowd sessions (Section 4.2: "We next consider multiple
//! crowd-members working in parallel").
//!
//! The sequential [`SimulatedCrowd`](crate::SimulatedCrowd) answers
//! questions inline; this module runs every member on its own worker
//! thread, exchanging questions and answers over channels — the shape a
//! real deployment has, where members answer in independent web sessions.
//! [`ParallelHandle`] implements [`CrowdSource`], so the mining engines
//! run unchanged on top of it; [`ParallelHandle::ask_batch`] additionally
//! fans one question out to many members **concurrently**, which is how an
//! aggregator's quorum would be gathered in practice.

use crate::member::SimulatedMember;
use crate::question::{Answer, CrowdSource, MemberId, Question};
use ontology::Vocabulary;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use telemetry::lockorder::TrackedMutex;

/// A unit of work for a member worker. The question travels as an
/// [`Arc`] so a batch fan-out allocates it once, not once per member.
enum Job {
    /// A real question; the answer is sent back on the channel.
    Ask(Arc<Question>, Sender<Answer>),
    /// A speculative question chain (engine prediction — one entry per
    /// planned batch slot): the worker answers the chain *now*, in order,
    /// keeps the results pending, and serves them to matching `Ask`s
    /// first-in-first-out; the member's session state is rolled back from
    /// the first unconsumed entry on any mismatch.
    Speculate(Vec<Arc<Question>>),
}

/// A live handle to the member worker threads. Created by
/// [`with_parallel_crowd`]; valid only inside its closure.
pub struct ParallelHandle {
    senders: Vec<Sender<Job>>,
    questions: Arc<AtomicUsize>,
    /// Telemetry handle (off by default). Only counters are bumped here —
    /// all from the coordinator thread that owns the handle, so recorded
    /// aggregates are deterministic.
    tele: telemetry::Telemetry,
}

impl ParallelHandle {
    /// Attaches a telemetry handle for fan-out/session counters.
    pub fn set_telemetry(&mut self, tele: telemetry::Telemetry) {
        self.tele = tele;
    }

    /// Fans `question` out to `members` concurrently and collects their
    /// answers in member order. The question is cloned once per batch and
    /// shared across the workers via [`Arc`].
    pub fn ask_batch(&mut self, members: &[MemberId], question: &Question) -> Vec<Answer> {
        self.tele.count("crowd.batches", 1);
        self.tele
            .count("crowd.batch_questions", members.len() as u64);
        let shared = Arc::new(question.clone());
        let receivers: Vec<Receiver<Answer>> = members
            .iter()
            .map(|m| {
                let (tx, rx) = channel();
                // PANIC-OK: one sender per member id by construction.
                self.senders[m.index()]
                    .send(Job::Ask(Arc::clone(&shared), tx))
                    // PANIC-OK: workers only exit when the handle drops,
                    // which cannot happen inside this batch call.
                    .expect("worker alive");
                rx
            })
            .collect();
        self.questions.fetch_add(members.len(), Ordering::Relaxed);
        receivers
            .into_iter()
            .map(|rx| rx.recv().unwrap_or(Answer::Unavailable))
            .collect()
    }
}

impl CrowdSource for ParallelHandle {
    fn members(&self) -> Vec<MemberId> {
        (0..self.senders.len() as u32).map(MemberId).collect()
    }

    fn ask(&mut self, member: MemberId, question: &Question) -> Answer {
        let (tx, rx) = channel();
        // PANIC-OK: one sender per member id by construction.
        if self.senders[member.index()]
            .send(Job::Ask(Arc::new(question.clone()), tx))
            .is_err()
        {
            return Answer::Unavailable;
        }
        self.questions.fetch_add(1, Ordering::Relaxed);
        self.tele.count("crowd.asks", 1);
        rx.recv().unwrap_or(Answer::Unavailable)
    }

    fn questions_asked(&self) -> usize {
        self.questions.load(Ordering::Relaxed)
    }

    fn supports_prefetch(&self) -> bool {
        true
    }

    /// Sends each predicted question to its member's worker, which
    /// computes the answer concurrently with the engine's round. Not
    /// counted in [`Self::questions_asked`]; a mispredicted (or unused)
    /// speculation is rolled back worker-side, so answers and member
    /// session state are identical to the non-speculative run.
    fn prefetch(&mut self, batch: &[(MemberId, Question)]) {
        self.tele.count("crowd.speculations", batch.len() as u64);
        // group each member's predicted questions into one ordered chain —
        // a batch-planner round predicts several questions per member,
        // which the worker answers ahead of time and serves FIFO
        let mut chains: Vec<Vec<Arc<Question>>> = vec![Vec::new(); self.senders.len()];
        for (member, question) in batch {
            // PANIC-OK: one chain slot per member id by construction.
            chains[member.index()].push(Arc::new(question.clone()));
        }
        for (i, chain) in chains.into_iter().enumerate() {
            if !chain.is_empty() {
                // a closed channel just means the run is over — ignore
                // PANIC-OK: one sender per member id by construction.
                let _ = self.senders[i].send(Job::Speculate(chain));
            }
        }
    }
}

/// Spawns one worker thread per member, hands a [`ParallelHandle`] to the
/// closure, and joins the workers when it returns. The members are given
/// back afterwards (with their session state), so behaviour can be
/// inspected or the crowd reused.
pub fn with_parallel_crowd<R>(
    vocab: &Vocabulary,
    members: Vec<SimulatedMember>,
    f: impl FnOnce(&mut ParallelHandle) -> R,
) -> (R, Vec<SimulatedMember>) {
    let n = members.len();
    let returned: Arc<TrackedMutex<Vec<Option<SimulatedMember>>>> = Arc::new(TrackedMutex::new(
        "crowd.parallel.returned",
        (0..n).map(|_| None).collect(),
    ));
    let questions = Arc::new(AtomicUsize::new(0));

    let result = std::thread::scope(|scope| {
        let mut senders = Vec::with_capacity(n);
        for (i, mut member) in members.into_iter().enumerate() {
            let (tx, rx): (Sender<Job>, Receiver<Job>) = channel();
            senders.push(tx);
            let returned = Arc::clone(&returned);
            scope.spawn(move || {
                // In-flight speculation chain, oldest first. Each entry
                // stores (question, its answer, the session state *before*
                // that answer) — so rewinding to the front entry's snapshot
                // undoes every unconsumed speculative answer.
                let mut pending: std::collections::VecDeque<(
                    Arc<Question>,
                    Answer,
                    crate::SessionSnapshot,
                )> = std::collections::VecDeque::new();
                for job in rx.iter() {
                    match job {
                        Job::Speculate(chain) => {
                            // A newer prediction supersedes an unconsumed
                            // one; rewind before re-speculating.
                            if let Some((_, _, snap)) = pending.pop_front() {
                                member.restore_session(snap);
                                pending.clear();
                            }
                            for question in chain {
                                let snap = member.session_snapshot();
                                let answer = member.answer(vocab, &question);
                                pending.push_back((question, answer, snap));
                            }
                        }
                        Job::Ask(question, reply) => {
                            let answer = match pending.pop_front() {
                                // Prediction hit: the stored answer was
                                // computed from exactly the session state
                                // a fresh answer would see (no real asks
                                // intervened since the snapshot). Later
                                // chain entries stay pending for the
                                // batch's follow-up asks.
                                Some((spec_q, spec_a, _)) if *spec_q == *question => spec_a,
                                // Miss: rewind past every unconsumed
                                // speculative answer, then answer for real.
                                Some((_, _, snap)) => {
                                    member.restore_session(snap);
                                    pending.clear();
                                    member.answer(vocab, &question)
                                }
                                None => member.answer(vocab, &question),
                            };
                            // a dropped reply receiver just means the
                            // caller gave up
                            let _ = reply.send(answer);
                        }
                    }
                }
                // A speculation never consumed must not leak into the
                // member's returned session state.
                if let Some((_, _, snap)) = pending.pop_front() {
                    member.restore_session(snap);
                }
                // PANIC-OK: lock poisoning propagates a sibling worker's
                // panic; slot `i` exists because the vec was pre-sized.
                returned.lock().expect("no worker panicked")[i] = Some(member);
            });
        }
        let mut handle = ParallelHandle {
            senders,
            questions: Arc::clone(&questions),
            tele: telemetry::Telemetry::off(),
        };
        let r = f(&mut handle);
        drop(handle); // close the channels so workers exit
        r
    });

    let members_back: Vec<SimulatedMember> = Arc::try_unwrap(returned)
        // PANIC-OK: the scope joined every worker, so this Arc is the
        // sole remaining reference.
        .expect("all workers joined")
        .into_inner()
        // PANIC-OK: lock poisoning propagates a worker panic.
        .expect("no worker panicked")
        .into_iter()
        // PANIC-OK: every worker fills its slot before returning.
        .map(|m| m.expect("worker returned its member"))
        .collect();
    (result, members_back)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::answer_model::AnswerModel;
    use crate::db::PersonalDb;
    use crate::member::{MemberBehavior, SimulatedCrowd};
    use ontology::domains::figure1;
    use ontology::PatternSet;

    fn members(ont: &ontology::Ontology, n: usize) -> Vec<SimulatedMember> {
        let [d1, d2] = figure1::personal_dbs(ont);
        (0..n)
            .map(|i| {
                let db = if i % 2 == 0 { d1.clone() } else { d2.clone() };
                SimulatedMember::new(
                    PersonalDb::from_transactions(db),
                    MemberBehavior::default(),
                    AnswerModel::Exact,
                    i as u64,
                )
            })
            .collect()
    }

    #[test]
    fn parallel_answers_match_sequential() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let p = PatternSet::from_facts([v.fact("Biking", "doAt", "Central Park").unwrap()]);
        let q = Question::Concrete { pattern: p };

        let mut seq = SimulatedCrowd::new(v, members(&ont, 4));
        let seq_answers: Vec<Answer> = (0..4).map(|i| seq.ask(MemberId(i), &q)).collect();

        let (par_answers, _) = with_parallel_crowd(v, members(&ont, 4), |crowd| {
            (0..4)
                .map(|i| crowd.ask(MemberId(i), &q))
                .collect::<Vec<_>>()
        });
        assert_eq!(seq_answers, par_answers);
    }

    #[test]
    fn ask_batch_gathers_a_quorum_concurrently() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let p = PatternSet::from_facts([v.fact("Feed a Monkey", "doAt", "Bronx Zoo").unwrap()]);
        let q = Question::Concrete { pattern: p };
        let ids: Vec<MemberId> = (0..6).map(MemberId).collect();
        let (answers, _) =
            with_parallel_crowd(v, members(&ont, 6), |crowd| crowd.ask_batch(&ids, &q));
        assert_eq!(answers.len(), 6);
        // u1-backed members report 3/6, u2-backed 1/2 — both exactly 0.5
        for a in &answers {
            match a {
                Answer::Support { support, .. } => {
                    assert!((support - 0.5).abs() < 1e-12);
                }
                other => panic!("{other:?}"),
            }
        }
    }

    #[test]
    fn members_are_returned_with_session_state() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let p = PatternSet::new();
        let q = Question::Concrete { pattern: p };
        let (_, back) = with_parallel_crowd(v, members(&ont, 3), |crowd| {
            crowd.ask(MemberId(1), &q);
            crowd.ask(MemberId(1), &q);
            assert_eq!(crowd.questions_asked(), 2);
        });
        assert_eq!(back[1].questions_answered(), 2);
        assert_eq!(back[0].questions_answered(), 0);
    }

    /// A noisy member consumes RNG on every concrete answer, so any
    /// speculation leak shows up as a diverging answer stream.
    fn noisy_members(ont: &ontology::Ontology, n: usize) -> Vec<SimulatedMember> {
        let [d1, d2] = figure1::personal_dbs(ont);
        (0..n)
            .map(|i| {
                let db = if i % 2 == 0 { d1.clone() } else { d2.clone() };
                SimulatedMember::new(
                    PersonalDb::from_transactions(db),
                    MemberBehavior::default(),
                    AnswerModel::Noisy { spread: 0.2 },
                    1000 + i as u64,
                )
            })
            .collect()
    }

    #[test]
    fn speculation_hits_misses_and_leftovers_preserve_the_answer_stream() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let q1 = Question::Concrete {
            pattern: PatternSet::from_facts([v.fact("Biking", "doAt", "Central Park").unwrap()]),
        };
        let q2 = Question::Concrete {
            pattern: PatternSet::from_facts([v
                .fact("Feed a Monkey", "doAt", "Bronx Zoo")
                .unwrap()]),
        };
        // Sequential reference stream: q1, q2, q1 to one member.
        let mut seq = SimulatedCrowd::new(v, noisy_members(&ont, 1));
        let expect: Vec<Answer> = [&q1, &q2, &q1]
            .iter()
            .map(|q| seq.ask(MemberId(0), q))
            .collect();

        let ((got, asked), back) = with_parallel_crowd(v, noisy_members(&ont, 1), |crowd| {
            let mut got = Vec::new();
            // hit: predict q1, ask q1
            crowd.prefetch(&[(MemberId(0), q1.clone())]);
            got.push(crowd.ask(MemberId(0), &q1));
            // miss: predict q1 again, ask q2 — must roll back
            crowd.prefetch(&[(MemberId(0), q1.clone())]);
            got.push(crowd.ask(MemberId(0), &q2));
            // superseded + leftover: two predictions, then ask the second
            crowd.prefetch(&[(MemberId(0), q2.clone())]);
            crowd.prefetch(&[(MemberId(0), q1.clone())]);
            got.push(crowd.ask(MemberId(0), &q1));
            // leftover never consumed before shutdown
            crowd.prefetch(&[(MemberId(0), q2.clone())]);
            (got, crowd.questions_asked())
        });
        assert_eq!(got, expect);
        // prefetches are not questions; only the three real asks count
        assert_eq!(asked, 3);
        assert_eq!(back[0].questions_answered(), 3);
    }

    #[test]
    fn prefetched_batches_match_the_sequential_quorum() {
        let ont = figure1::ontology();
        let v = ont.vocab();
        let q = Question::Concrete {
            pattern: PatternSet::from_facts([v.fact("Biking", "doAt", "Central Park").unwrap()]),
        };
        let ids: Vec<MemberId> = (0..6).map(MemberId).collect();
        let mut seq = SimulatedCrowd::new(v, noisy_members(&ont, 6));
        let expect: Vec<Answer> = ids.iter().map(|&m| seq.ask(m, &q)).collect();
        let (got, _) = with_parallel_crowd(v, noisy_members(&ont, 6), |crowd| {
            let batch: Vec<(MemberId, Question)> = ids.iter().map(|&m| (m, q.clone())).collect();
            crowd.prefetch(&batch);
            crowd.ask_batch(&ids, &q)
        });
        assert_eq!(got, expect);
    }

    #[test]
    fn stalls_survive_speculation_rollback() {
        // A stalling member periodically returns NoResponse; the stall
        // counter is part of the session snapshot, so speculation hits,
        // misses and leftovers must reproduce the exact sequential stream
        // of Support/NoResponse answers.
        let ont = figure1::ontology();
        let v = ont.vocab();
        let make = || {
            let [d1, _] = figure1::personal_dbs(&ont);
            vec![SimulatedMember::new(
                PersonalDb::from_transactions(d1),
                MemberBehavior {
                    stall_every: Some(2),
                    ..Default::default()
                },
                AnswerModel::Exact,
                9,
            )]
        };
        let q1 = Question::Concrete {
            pattern: PatternSet::from_facts([v.fact("Biking", "doAt", "Central Park").unwrap()]),
        };
        let q2 = Question::Concrete {
            pattern: PatternSet::from_facts([v
                .fact("Feed a Monkey", "doAt", "Bronx Zoo")
                .unwrap()]),
        };
        let mut seq = SimulatedCrowd::new(v, make());
        let expect: Vec<Answer> = [&q1, &q2, &q1, &q2]
            .iter()
            .map(|q| seq.ask(MemberId(0), q))
            .collect();
        assert!(expect.contains(&Answer::NoResponse));

        let (got, _) = with_parallel_crowd(v, make(), |crowd| {
            let mut got = Vec::new();
            // hit on an answer, hit on a stall
            crowd.prefetch(&[(MemberId(0), q1.clone())]);
            got.push(crowd.ask(MemberId(0), &q1));
            crowd.prefetch(&[(MemberId(0), q2.clone())]);
            got.push(crowd.ask(MemberId(0), &q2));
            // miss across a stall boundary — must roll the counter back
            crowd.prefetch(&[(MemberId(0), q2.clone())]);
            got.push(crowd.ask(MemberId(0), &q1));
            got.push(crowd.ask(MemberId(0), &q2));
            got
        });
        assert_eq!(got, expect);
    }

    #[test]
    fn mining_runs_unchanged_on_the_parallel_crowd() {
        // The vertical algorithm is agnostic to where answers come from.
        let ont = figure1::ontology();
        let v = ont.vocab();
        let [d1, d2] = figure1::personal_dbs(&ont);
        let mut tx = d1;
        for _ in 0..3 {
            tx.extend(d2.iter().cloned());
        }
        let member = SimulatedMember::new(
            PersonalDb::from_transactions(tx),
            MemberBehavior::default(),
            AnswerModel::Exact,
            0,
        );
        // cross-crate use lives in tests/parallel_mining.rs; here we only
        // check the CrowdSource contract end to end
        let p = PatternSet::from_facts([v.fact("Biking", "doAt", "Central Park").unwrap()]);
        let (answer, _) = with_parallel_crowd(v, vec![member], |crowd| {
            crowd.ask(MemberId(0), &Question::Concrete { pattern: p.clone() })
        });
        match answer {
            Answer::Support { support, .. } => assert!((support - 5.0 / 12.0).abs() < 1e-12),
            other => panic!("{other:?}"),
        }
    }
}
