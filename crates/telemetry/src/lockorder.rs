//! Runtime lock-order sanitizer: the dynamic half of audit rule D7.
//!
//! The static analyzer (`crates/audit`, rule D7) derives which locks each
//! function may hold and flags acquisition-order cycles it can prove from
//! the call graph. It is conservative: dynamic dispatch, closures passed
//! across crate boundaries and lock handles smuggled through collections
//! are all blind spots. This module closes the loop at runtime — every
//! [`TrackedMutex`] records, per thread, which named locks are held when
//! it is acquired, and feeds each `held → acquired` pair into a global
//! acquisition-order graph. Adding an edge that makes the graph cyclic
//! (the classic AB/BA inversion, or any longer cycle) panics immediately
//! with both lock names, *before* the schedule that would actually
//! deadlock has to occur.
//!
//! Tracking is active in debug builds and whenever the `lockorder`
//! feature is enabled (the nightly CI matrix turns it on for release
//! sim runs). In untracked builds [`TrackedMutex`] compiles down to a
//! plain [`Mutex`] plus an unused `&'static str`.
//!
//! The order graph is process-global on purpose: the whole point is to
//! observe orders *across* subsystems (cache vs. telemetry sink vs.
//! worker pools), and tests run threads. Consequently, fixture tests
//! that plant deliberate inversions must use lock names unique to that
//! test, or they would poison the order graph for everyone else.
//!
//! What each acquisition does, in order:
//!
//! 1. **Recursive-lock check** — acquiring a name this thread already
//!    holds is an immediate panic (std `Mutex` is not reentrant; that
//!    schedule deadlocks with itself every time).
//! 2. **Order check** — for the innermost lock currently held, insert
//!    the edge `held → acquired`; if `acquired` already reaches `held`
//!    in the order graph, panic with the inverted pair.
//! 3. Only then block on the underlying mutex. Checks happen before
//!    blocking, so an inversion is reported even on the lucky schedules
//!    where it does not deadlock.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{LockResult, Mutex, MutexGuard, PoisonError};

/// Whether acquisitions are recorded and checked in this build.
pub const TRACKING: bool = cfg!(any(debug_assertions, feature = "lockorder"));

/// The global acquisition-order graph: `a → b` means some thread
/// acquired `b` while holding `a`. Kept sorted so snapshots are
/// deterministic regardless of thread interleaving.
static ORDER: Mutex<BTreeMap<&'static str, BTreeSet<&'static str>>> = Mutex::new(BTreeMap::new());

thread_local! {
    /// Names of tracked locks this thread currently holds, outermost
    /// first.
    static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Is `to` reachable from `from` in the order graph?
fn reaches(
    graph: &BTreeMap<&'static str, BTreeSet<&'static str>>,
    from: &'static str,
    to: &'static str,
) -> bool {
    let mut seen: BTreeSet<&'static str> = BTreeSet::new();
    let mut stack = vec![from];
    while let Some(n) = stack.pop() {
        if n == to {
            return true;
        }
        if !seen.insert(n) {
            continue;
        }
        if let Some(next) = graph.get(n) {
            stack.extend(next.iter().copied());
        }
    }
    false
}

/// Records (and checks) the acquisition of `name` on this thread.
fn enter(name: &'static str) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        assert!(
            !held.contains(&name),
            "lockorder: recursive acquisition of `{name}` — std Mutex is not reentrant, \
             this schedule self-deadlocks"
        );
        if let Some(&inner) = held.last() {
            // The order mutex itself is a plain Mutex, so recording an
            // edge cannot recurse into the tracker.
            let mut graph = ORDER.lock().unwrap_or_else(PoisonError::into_inner);
            if reaches(&graph, name, inner) {
                panic!(
                    "lockorder: lock-order inversion — acquiring `{name}` while holding \
                     `{inner}`, but the opposite order `{name}` → … → `{inner}` was already \
                     observed; pick one global order"
                );
            }
            graph.entry(inner).or_default().insert(name);
        }
        held.push(name);
    });
}

/// Records the release of `name` on this thread.
fn exit(name: &'static str) {
    HELD.with(|held| {
        let mut held = held.borrow_mut();
        if let Some(pos) = held.iter().rposition(|&h| h == name) {
            held.remove(pos);
        }
    });
}

/// A deterministic snapshot of every acquisition-order edge observed so
/// far, as `(outer, inner)` pairs sorted by name. Test hook: the
/// static/dynamic agreement test replays a sim run and asserts each
/// observed edge is compatible with the order the audit derived.
pub fn observed_edges() -> Vec<(&'static str, &'static str)> {
    let graph = ORDER.lock().unwrap_or_else(PoisonError::into_inner);
    graph
        .iter()
        .flat_map(|(&a, bs)| bs.iter().map(move |&b| (a, b)))
        .collect()
}

/// A [`Mutex`] that reports its acquisitions to the global lock-order
/// graph under a stable, human-readable name (convention:
/// `"crate.module.field"`). Drop-in for the std API subset the engines
/// use: [`lock`](TrackedMutex::lock) and
/// [`into_inner`](TrackedMutex::into_inner), with poisoning semantics
/// preserved.
#[derive(Debug)]
pub struct TrackedMutex<T> {
    name: &'static str,
    inner: Mutex<T>,
}

impl<T> TrackedMutex<T> {
    /// Wraps `value` in a mutex tracked as `name`. Names must be unique
    /// per lock *instance class*: two instances sharing a name share an
    /// order-graph node, which is exactly right for "the cache lock"
    /// but wrong for unrelated locks.
    pub fn new(name: &'static str, value: T) -> TrackedMutex<T> {
        TrackedMutex {
            name,
            inner: Mutex::new(value),
        }
    }

    /// Acquires the lock, recording the acquisition first (tracked
    /// builds only). Panics on a recursive acquisition or an order
    /// inversion; returns the poison error of the underlying mutex
    /// otherwise, exactly like [`Mutex::lock`].
    pub fn lock(&self) -> LockResult<TrackedGuard<'_, T>> {
        if TRACKING {
            enter(self.name);
        }
        match self.inner.lock() {
            Ok(guard) => Ok(TrackedGuard {
                name: self.name,
                guard,
            }),
            Err(poisoned) => Err(PoisonError::new(TrackedGuard {
                name: self.name,
                guard: poisoned.into_inner(),
            })),
        }
    }

    /// Consumes the mutex, returning the inner value (no lock is taken,
    /// so nothing is recorded).
    pub fn into_inner(self) -> LockResult<T> {
        self.inner.into_inner()
    }
}

/// The guard of a [`TrackedMutex`]; releasing it pops the lock from the
/// thread's held stack.
#[derive(Debug)]
pub struct TrackedGuard<'a, T> {
    name: &'static str,
    guard: MutexGuard<'a, T>,
}

impl<T> std::ops::Deref for TrackedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for TrackedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for TrackedGuard<'_, T> {
    fn drop(&mut self) {
        if TRACKING {
            exit(self.name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consistent_order_is_silent_and_recorded() {
        let a = TrackedMutex::new("test.consistent.a", 1);
        let b = TrackedMutex::new("test.consistent.b", 2);
        for _ in 0..2 {
            let ga = a.lock().unwrap();
            let gb = b.lock().unwrap();
            assert_eq!(*ga + *gb, 3);
        }
        assert!(
            observed_edges().contains(&("test.consistent.a", "test.consistent.b")),
            "the a→b edge is in the order graph"
        );
    }

    #[test]
    #[should_panic(expected = "lock-order inversion")]
    fn inversion_panics_on_the_second_order() {
        let a = TrackedMutex::new("test.invert.a", ());
        let b = TrackedMutex::new("test.invert.b", ());
        {
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
        }
        let _gb = b.lock().unwrap();
        let _ga = a.lock().unwrap(); // inversion: b held, a→b already observed
    }

    #[test]
    #[should_panic(expected = "recursive acquisition")]
    fn recursive_lock_panics() {
        let a = TrackedMutex::new("test.recursive.a", ());
        let _g1 = a.lock().unwrap();
        let _g2 = a.lock().unwrap();
    }

    #[test]
    #[should_panic(expected = "lock-order inversion")]
    fn longer_cycles_are_caught_transitively() {
        let a = TrackedMutex::new("test.cycle3.a", ());
        let b = TrackedMutex::new("test.cycle3.b", ());
        let c = TrackedMutex::new("test.cycle3.c", ());
        {
            let _ga = a.lock().unwrap();
            let _gb = b.lock().unwrap();
        }
        {
            let _gb = b.lock().unwrap();
            let _gc = c.lock().unwrap();
        }
        let _gc = c.lock().unwrap();
        let _ga = a.lock().unwrap(); // c→a closes the a→b→c cycle
    }

    #[test]
    fn dropping_the_guard_releases_the_hold() {
        let a = TrackedMutex::new("test.release.a", ());
        let b = TrackedMutex::new("test.release.b", ());
        {
            let _ga = a.lock().unwrap();
        } // released: the next acquisition of b holds nothing
        let _gb = b.lock().unwrap();
        assert!(
            !observed_edges().contains(&("test.release.a", "test.release.b")),
            "no edge is recorded once the guard is dropped"
        );
    }
}
