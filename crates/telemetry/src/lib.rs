//! Deterministic observability for the OASSIS engines: hierarchical
//! spans, counters and fixed-bucket histograms, collected into a
//! [`TelemetrySink`] that serializes to JSONL traces and a metrics
//! snapshot.
//!
//! # Determinism contract
//!
//! Nothing here reads a wall clock — audit rule D2 bans
//! `Instant`/`SystemTime` outside `crates/bench`, and a trace stamped
//! with wall time could never be replayed bit-identically. Instead every
//! *trace event* (span start/end, mark) advances a **logical tick
//! counter** by one; a harness that owns a logical clock (the simtest
//! [`LogicalClock`]) can fold real event time in via
//! [`Telemetry::sync_tick`], which only ever moves the counter forward.
//! Two runs that record the same events in the same order therefore
//! produce byte-identical traces.
//!
//! The engines uphold that by construction:
//!
//! * span/mark events are recorded only on sequential coordinator
//!   paths (the mining loops, never inside `minipool::par_map`
//!   callbacks);
//! * counters and histograms are commutative aggregates (`BTreeMap`
//!   keyed, addition only) and do **not** advance the tick, so even a
//!   counter bumped from a worker thread cannot perturb the trace.
//!
//! # Zero-cost off switch
//!
//! The handle the engines carry is [`Telemetry`], which is either *off*
//! (the [`NoopSink`] default — a `None` sink, every call an immediate
//! early return with no locking and no allocation) or *recording* into
//! an [`Arc<TelemetrySink>`]. `Telemetry::default()` is off, so adding
//! the handle to a config struct changes no existing behavior and no
//! golden digest.
//!
//! ```
//! use telemetry::{Telemetry, TelemetrySink};
//!
//! let sink = TelemetrySink::shared();
//! let tele = Telemetry::recording(&sink);
//! {
//!     let run = tele.span("mine");
//!     run.tele().count("questions", 3);
//!     run.tele().observe("batch_size", 8);
//! } // span ends here
//! let snap = sink.snapshot();
//! assert_eq!(snap.counters["questions"], 3);
//! assert_eq!(snap.spans["mine"].count, 1);
//! ```

#![forbid(unsafe_code)]
#![deny(unused_must_use)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;

pub mod lockorder;

/// Number of histogram buckets: bucket 0 holds zeros, bucket `i` holds
/// values whose bit length is `i` (i.e. `2^(i-1) ..= 2^i - 1`), and the
/// last bucket absorbs everything with 17 or more bits.
pub const HISTOGRAM_BUCKETS: usize = 18;

/// A fixed-bucket power-of-two histogram over `u64` samples.
///
/// Buckets never reallocate and merging is commutative addition, so
/// histograms are safe to aggregate in any order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket sample counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total number of samples.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample, `u64::MAX` while empty.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let bucket = bucket_index(value);
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }
}

/// The bucket a sample falls into: 0 for zero, else the bit length
/// capped at the last bucket.
fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// One record in a trace: spans nest via `parent`, marks are point
/// events. Ticks are logical (see the module docs), strictly assigned
/// in recording order and non-decreasing.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A span opened.
    SpanStart {
        /// Span id, unique within the sink.
        id: u32,
        /// Enclosing span, if any.
        parent: Option<u32>,
        /// Span name (used for aggregation in the snapshot).
        name: String,
        /// Free-form detail, `""` when absent.
        detail: String,
        /// Logical tick at open.
        tick: u64,
    },
    /// A span closed.
    SpanEnd {
        /// The id from the matching [`TraceEvent::SpanStart`].
        id: u32,
        /// Logical tick at close.
        tick: u64,
    },
    /// A point event.
    Mark {
        /// Enclosing span, if any.
        parent: Option<u32>,
        /// Mark name.
        name: String,
        /// Free-form detail, `""` when absent.
        detail: String,
        /// Logical tick.
        tick: u64,
    },
}

impl TraceEvent {
    /// The event's logical tick.
    pub fn tick(&self) -> u64 {
        match self {
            TraceEvent::SpanStart { tick, .. }
            | TraceEvent::SpanEnd { tick, .. }
            | TraceEvent::Mark { tick, .. } => *tick,
        }
    }

    /// One JSONL line (no trailing newline).
    fn to_json_line(&self) -> String {
        fn opt_id(v: Option<u32>) -> String {
            match v {
                Some(id) => id.to_string(),
                None => "null".to_string(),
            }
        }
        match self {
            TraceEvent::SpanStart {
                id,
                parent,
                name,
                detail,
                tick,
            } => format!(
                "{{\"type\":\"span_start\",\"id\":{id},\"parent\":{},\"name\":{},\"detail\":{},\"tick\":{tick}}}",
                opt_id(*parent),
                escape_json(name),
                escape_json(detail),
            ),
            TraceEvent::SpanEnd { id, tick } => {
                format!("{{\"type\":\"span_end\",\"id\":{id},\"tick\":{tick}}}")
            }
            TraceEvent::Mark {
                parent,
                name,
                detail,
                tick,
            } => format!(
                "{{\"type\":\"mark\",\"parent\":{},\"name\":{},\"detail\":{},\"tick\":{tick}}}",
                opt_id(*parent),
                escape_json(name),
                escape_json(detail),
            ),
        }
    }
}

/// JSON string escaping (mirrors `ontology::json`'s writer so traces
/// parse back with that crate).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Everything the sink has collected, behind one mutex.
#[derive(Debug, Default)]
struct SinkState {
    /// Logical tick; advanced by one per trace event, and forced
    /// forward by [`Telemetry::sync_tick`].
    tick: u64,
    next_span: u32,
    events: Vec<TraceEvent>,
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
}

/// The recording collector: trace events in order, plus counter and
/// histogram aggregates. Shared across the engine via `Arc`; see the
/// module docs for the determinism contract.
#[derive(Debug)]
pub struct TelemetrySink {
    state: lockorder::TrackedMutex<SinkState>,
}

impl Default for TelemetrySink {
    fn default() -> TelemetrySink {
        TelemetrySink {
            state: lockorder::TrackedMutex::new("telemetry.sink.state", SinkState::default()),
        }
    }
}

/// Aggregate totals for all spans sharing a name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpanTotals {
    /// How many spans with this name closed.
    pub count: u64,
    /// Total logical ticks spent inside them (end − start, summed).
    pub ticks: u64,
}

/// A point-in-time copy of the sink's aggregates.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter totals, sorted by name.
    pub counters: BTreeMap<String, u64>,
    /// Histograms, sorted by name.
    pub histograms: BTreeMap<String, Histogram>,
    /// Per-name span totals (closed spans only), sorted by name.
    pub spans: BTreeMap<String, SpanTotals>,
    /// Number of trace events recorded.
    pub events: usize,
    /// The logical tick after the last event.
    pub last_tick: u64,
}

impl TelemetrySink {
    /// A fresh sink.
    pub fn new() -> TelemetrySink {
        TelemetrySink::default()
    }

    /// A fresh sink, already wrapped for sharing.
    pub fn shared() -> Arc<TelemetrySink> {
        Arc::new(TelemetrySink::new())
    }

    /// Runs `f` on the locked state. A poisoned mutex means a panic
    /// mid-record; the data is still sound (every record is a single
    /// atomic mutation), so recover the guard rather than propagate.
    fn with_state<R>(&self, f: impl FnOnce(&mut SinkState) -> R) -> R {
        let mut guard = match self.state.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut guard)
    }

    fn record_event(&self, make: impl FnOnce(u64, &mut SinkState) -> TraceEvent) {
        self.with_state(|s| {
            s.tick += 1;
            let tick = s.tick;
            let ev = make(tick, s);
            s.events.push(ev);
        });
    }

    /// Copies out the recorded trace events.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.with_state(|s| s.events.clone())
    }

    /// Current value of a counter (0 if never bumped).
    pub fn counter(&self, name: &str) -> u64 {
        self.with_state(|s| s.counters.get(name).copied().unwrap_or(0))
    }

    /// Aggregates counters, histograms and closed-span totals.
    pub fn snapshot(&self) -> Snapshot {
        self.with_state(|s| {
            let mut spans: BTreeMap<String, SpanTotals> = BTreeMap::new();
            let mut open: BTreeMap<u32, (String, u64)> = BTreeMap::new();
            for ev in &s.events {
                match ev {
                    TraceEvent::SpanStart { id, name, tick, .. } => {
                        open.insert(*id, (name.clone(), *tick));
                    }
                    TraceEvent::SpanEnd { id, tick } => {
                        if let Some((name, start)) = open.remove(id) {
                            let t = spans.entry(name).or_default();
                            t.count += 1;
                            t.ticks += tick.saturating_sub(start);
                        }
                    }
                    TraceEvent::Mark { .. } => {}
                }
            }
            Snapshot {
                counters: s.counters.clone(),
                histograms: s.histograms.clone(),
                spans,
                events: s.events.len(),
                last_tick: s.tick,
            }
        })
    }

    /// The whole trace as JSONL (one event object per line, in
    /// recording order).
    pub fn to_jsonl(&self) -> String {
        self.with_state(|s| {
            let mut out = String::new();
            for ev in &s.events {
                out.push_str(&ev.to_json_line());
                out.push('\n');
            }
            out
        })
    }

    /// Writes the JSONL trace to `path` (created or truncated).
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_jsonl().as_bytes())?;
        f.flush()
    }

    /// The metrics snapshot as one JSON object: `counters`,
    /// `histograms` (each `{count, sum, min, max, buckets}`) and
    /// `spans` (each `{count, ticks}`), all name-sorted so output is
    /// deterministic.
    pub fn snapshot_json(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::from("{\"counters\":{");
        for (i, (k, v)) in snap.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", escape_json(k), v));
        }
        out.push_str("},\"histograms\":{");
        for (i, (k, h)) in snap.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let min = if h.count == 0 { 0 } else { h.min };
            out.push_str(&format!(
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[",
                escape_json(k),
                h.count,
                h.sum,
                min,
                h.max,
            ));
            for (j, b) in h.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&b.to_string());
            }
            out.push_str("]}");
        }
        out.push_str("},\"spans\":{");
        for (i, (k, t)) in snap.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{}:{{\"count\":{},\"ticks\":{}}}",
                escape_json(k),
                t.count,
                t.ticks,
            ));
        }
        out.push_str("}}");
        out
    }
}

/// The documented "telemetry off" sink: it stores nothing and costs
/// nothing. [`Telemetry::default`] is equivalent to routing into a
/// `NoopSink` — calls early-return before any lock or allocation —
/// which is what keeps golden digests and `BENCH_speed.json` baselines
/// bit-identical when observability is not requested.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoopSink;

impl NoopSink {
    /// The disabled handle this sink stands for.
    pub fn handle(&self) -> Telemetry {
        Telemetry::default()
    }
}

/// The handle instrumented code carries: either off (default) or
/// recording into a shared [`TelemetrySink`]. Cloning is cheap (an
/// `Option<Arc>` and a parent id); a clone records into the same sink
/// under the same parent span.
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<TelemetrySink>>,
    parent: Option<u32>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.sink {
            Some(_) => write!(f, "Telemetry(recording, parent={:?})", self.parent),
            None => write!(f, "Telemetry(off)"),
        }
    }
}

impl Telemetry {
    /// The disabled handle (same as `Telemetry::default()`).
    pub fn off() -> Telemetry {
        Telemetry::default()
    }

    /// A root handle recording into `sink`.
    pub fn recording(sink: &Arc<TelemetrySink>) -> Telemetry {
        Telemetry {
            sink: Some(Arc::clone(sink)),
            parent: None,
        }
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// The sink behind this handle, if recording.
    pub fn sink(&self) -> Option<&Arc<TelemetrySink>> {
        self.sink.as_ref()
    }

    /// Opens a span; it closes when the returned guard drops. Nested
    /// records go through [`Span::tele`], which carries the new parent
    /// id. Call only from sequential coordinator code (module docs).
    pub fn span(&self, name: &str) -> Span {
        self.span_with(name, "")
    }

    /// [`Telemetry::span`] with a free-form detail string.
    pub fn span_with(&self, name: &str, detail: &str) -> Span {
        let Some(sink) = &self.sink else {
            return Span {
                child: Telemetry::default(),
                open: None,
            };
        };
        let parent = self.parent;
        let mut span_id = 0u32;
        sink.record_event(|tick, s| {
            span_id = s.next_span;
            s.next_span += 1;
            TraceEvent::SpanStart {
                id: span_id,
                parent,
                name: name.to_string(),
                detail: detail.to_string(),
                tick,
            }
        });
        Span {
            child: Telemetry {
                sink: Some(Arc::clone(sink)),
                parent: Some(span_id),
            },
            open: Some((Arc::clone(sink), span_id)),
        }
    }

    /// Records a point event under the current parent span.
    pub fn mark(&self, name: &str, detail: &str) {
        let Some(sink) = &self.sink else { return };
        let parent = self.parent;
        sink.record_event(|tick, _| TraceEvent::Mark {
            parent,
            name: name.to_string(),
            detail: detail.to_string(),
            tick,
        });
    }

    /// Adds `delta` to a named counter. Commutative; never advances
    /// the tick, so it is safe anywhere (including worker threads).
    pub fn count(&self, name: &str, delta: u64) {
        let Some(sink) = &self.sink else { return };
        if delta == 0 {
            return;
        }
        sink.with_state(|s| {
            *s.counters.entry(name.to_string()).or_insert(0) += delta;
        });
    }

    /// Records one sample into a named histogram. Commutative; never
    /// advances the tick.
    pub fn observe(&self, name: &str, value: u64) {
        let Some(sink) = &self.sink else { return };
        sink.with_state(|s| {
            s.histograms
                .entry(name.to_string())
                .or_default()
                .record(value);
        });
    }

    /// Folds an external logical clock in: the tick becomes
    /// `max(tick, t)`. Simtest drives this from its event clock so
    /// trace ticks line up with simulated crowd latency; it never moves
    /// the counter backwards.
    pub fn sync_tick(&self, t: u64) {
        let Some(sink) = &self.sink else { return };
        sink.with_state(|s| s.tick = s.tick.max(t));
    }

    /// A view of this handle that prefixes every recorded name with
    /// `label` (`"<label>.<name>"`). The cluster simulation hands each
    /// shard node a `labeled("node3")` view so one shared sink keeps
    /// per-node spans and counters apart without threading label strings
    /// through every call site. Free when telemetry is off.
    pub fn labeled(&self, label: &str) -> Labeled {
        Labeled {
            inner: self.clone(),
            label: label.to_string(),
        }
    }
}

/// A name-prefixing view of a [`Telemetry`] handle — see
/// [`Telemetry::labeled`]. Forwards every record with the label glued on
/// as `"<label>.<name>"`; when the underlying handle is off, calls
/// early-return before building the prefixed name.
#[derive(Clone, Debug)]
pub struct Labeled {
    inner: Telemetry,
    label: String,
}

impl Labeled {
    /// The prefix applied to every name.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The unprefixed handle underneath (for records that are global,
    /// not per-label).
    pub fn tele(&self) -> &Telemetry {
        &self.inner
    }

    fn prefixed(&self, name: &str) -> String {
        format!("{}.{}", self.label, name)
    }

    /// [`Telemetry::span`] under the prefixed name.
    pub fn span(&self, name: &str) -> Span {
        self.span_with(name, "")
    }

    /// [`Telemetry::span_with`] under the prefixed name.
    pub fn span_with(&self, name: &str, detail: &str) -> Span {
        if !self.inner.is_enabled() {
            return Span {
                child: Telemetry::default(),
                open: None,
            };
        }
        self.inner.span_with(&self.prefixed(name), detail)
    }

    /// [`Telemetry::mark`] under the prefixed name.
    pub fn mark(&self, name: &str, detail: &str) {
        if !self.inner.is_enabled() {
            return;
        }
        self.inner.mark(&self.prefixed(name), detail);
    }

    /// [`Telemetry::count`] under the prefixed name.
    pub fn count(&self, name: &str, delta: u64) {
        if !self.inner.is_enabled() {
            return;
        }
        self.inner.count(&self.prefixed(name), delta);
    }

    /// [`Telemetry::observe`] under the prefixed name.
    pub fn observe(&self, name: &str, value: u64) {
        if !self.inner.is_enabled() {
            return;
        }
        self.inner.observe(&self.prefixed(name), value);
    }

    /// [`Telemetry::sync_tick`] (labels never apply to the clock).
    pub fn sync_tick(&self, t: u64) {
        self.inner.sync_tick(t);
    }
}

/// RAII guard for an open span. Dropping it records the span end;
/// records made through [`Span::tele`] nest under it.
#[derive(Debug)]
pub struct Span {
    child: Telemetry,
    open: Option<(Arc<TelemetrySink>, u32)>,
}

impl Span {
    /// A handle whose records nest under this span.
    pub fn tele(&self) -> &Telemetry {
        &self.child
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((sink, id)) = self.open.take() {
            sink.record_event(|tick, _| TraceEvent::SpanEnd { id, tick });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_handle_records_nothing() {
        let tele = Telemetry::off();
        assert!(!tele.is_enabled());
        let span = tele.span("x");
        span.tele().count("c", 5);
        span.tele().observe("h", 1);
        span.tele().mark("m", "");
        drop(span);
        // nothing to assert against — the absence of a sink IS the test;
        // NoopSink::handle is the same disabled handle
        assert!(!NoopSink.handle().is_enabled());
    }

    #[test]
    fn spans_nest_and_ticks_are_monotonic() {
        let sink = TelemetrySink::shared();
        let tele = Telemetry::recording(&sink);
        {
            let outer = tele.span_with("outer", "d");
            {
                let inner = outer.tele().span("inner");
                inner.tele().mark("point", "here");
            }
        }
        let events = sink.events();
        assert_eq!(events.len(), 5); // 2 starts + 1 mark + 2 ends
        let ticks: Vec<u64> = events.iter().map(|e| e.tick()).collect();
        assert!(ticks.windows(2).all(|w| w[0] < w[1]), "{ticks:?}");
        match &events[1] {
            TraceEvent::SpanStart { parent, name, .. } => {
                assert_eq!(*parent, Some(0));
                assert_eq!(name, "inner");
            }
            other => panic!("expected inner start, got {other:?}"),
        }
        match &events[2] {
            TraceEvent::Mark { parent, .. } => assert_eq!(*parent, Some(1)),
            other => panic!("expected mark, got {other:?}"),
        }
        let snap = sink.snapshot();
        assert_eq!(snap.spans["outer"].count, 1);
        assert_eq!(snap.spans["inner"].count, 1);
        assert!(snap.spans["outer"].ticks >= snap.spans["inner"].ticks);
    }

    #[test]
    fn labeled_views_prefix_every_name() {
        let sink = TelemetrySink::shared();
        let tele = Telemetry::recording(&sink);
        let node = tele.labeled("node3");
        {
            let span = node.span("merge");
            span.tele().count("plain", 1); // nested handle is unprefixed
        }
        node.count("ops_sent", 4);
        node.observe("batch_len", 2);
        node.mark("restart", "");
        let snap = sink.snapshot();
        assert_eq!(snap.spans["node3.merge"].count, 1);
        assert_eq!(snap.counters["plain"], 1);
        assert_eq!(snap.counters["node3.ops_sent"], 4);
        assert_eq!(snap.histograms["node3.batch_len"].count, 1);
        assert_eq!(node.label(), "node3");
        // an off handle stays off through the view
        let off = Telemetry::off().labeled("x");
        off.count("c", 1);
        off.observe("h", 1);
        off.mark("m", "");
        assert!(!off.tele().is_enabled());
        drop(off.span("s"));
    }

    #[test]
    fn counters_and_histograms_aggregate() {
        let sink = TelemetrySink::shared();
        let tele = Telemetry::recording(&sink);
        tele.count("q", 2);
        tele.count("q", 3);
        tele.observe("sizes", 0);
        tele.observe("sizes", 1);
        tele.observe("sizes", 7);
        tele.observe("sizes", 1 << 40);
        let snap = sink.snapshot();
        assert_eq!(snap.counters["q"], 5);
        let h = &snap.histograms["sizes"];
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 0);
        assert_eq!(h.max, 1 << 40);
        assert_eq!(h.buckets[0], 1); // the zero
        assert_eq!(h.buckets[1], 1); // 1
        assert_eq!(h.buckets[3], 1); // 7 (3 bits)
        assert_eq!(h.buckets[HISTOGRAM_BUCKETS - 1], 1); // overflow bucket
    }

    #[test]
    fn sync_tick_only_moves_forward() {
        let sink = TelemetrySink::shared();
        let tele = Telemetry::recording(&sink);
        tele.sync_tick(100);
        tele.mark("a", "");
        tele.sync_tick(5); // must not rewind
        tele.mark("b", "");
        let events = sink.events();
        assert_eq!(events[0].tick(), 101);
        assert_eq!(events[1].tick(), 102);
    }

    #[test]
    fn jsonl_escapes_and_is_line_per_event() {
        let sink = TelemetrySink::shared();
        let tele = Telemetry::recording(&sink);
        let s = tele.span_with("q", "say \"hi\"\nline2");
        drop(s);
        let text = sink.to_jsonl();
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains("\\\"hi\\\""));
        assert!(text.contains("\\n"));
        // snapshot JSON is well-formed too (spot-check shape)
        let snap = sink.snapshot_json();
        assert!(snap.starts_with("{\"counters\":{"));
        assert!(snap.contains("\"spans\":{"));
    }
}
